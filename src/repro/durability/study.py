"""The recovery study: exercise the crash x corruption matrix.

``repro recover`` builds a small real engine (sealed segments *and*
unsealed growing rows, deletes, payloads), then attacks its durable
store every way the fault layer knows how, checking the three recovery
invariants the durability design promises:

1. **Crash consistency** — for every declared crash point (and
   occurrence, and torn-write variant) injected during ``save``, a
   subsequent ``load()`` returns exactly the prior committed state or
   exactly the new one, never a hybrid — decided by bit-comparing query
   results (ids *and* distances) against both reference engines.
2. **Scrub completeness** — after seeded byte flips in committed
   files, ``scrub()`` attributes damage in 100% of the corrupted
   files, and ``load()`` refuses the store.
3. **Recovery fidelity** — an engine recovered after a crash (plus
   ``repair()``) answers queries bit-identically to a never-crashed
   engine in the same state, and a torn WAL tail is truncated to the
   longest valid prefix.

The study is deterministic under its seed; ``--quick`` shrinks the
matrix for CI smoke use.
"""

from __future__ import annotations

import shutil
import tempfile
import typing as t
from pathlib import Path

import numpy as np

from repro.data.synthetic import make_vectors
from repro.durability import (SAVE_CRASH_POINTS, load_wal, repair,
                              save_engine, scrub, WalAppender)
from repro.durability.store import load_engine
from repro.engines.engine import IndexSpec, VectorEngine
from repro.errors import CorruptionError, InjectedCrash
from repro.faults.crash import CorruptionPlan, CrashInjector, CrashPlan


def _fingerprint(engine: VectorEngine, queries: np.ndarray,
                 ) -> list[tuple[bytes, bytes]]:
    """Bit-exact search results: (ids, dists) bytes per query."""
    out = []
    for query in queries:
        result = engine.search("docs", query, 5, ef_search=40)
        out.append((result.ids.tobytes(), result.dists.tobytes()))
    return out


def _build_engine(data: np.ndarray, extra: np.ndarray) -> VectorEngine:
    engine = VectorEngine("milvus")
    engine.create_collection(
        "docs", data.shape[1],
        IndexSpec.of("hnsw", M=8, ef_construction=32), storage_dim=64)
    engine.insert("docs", data,
                  payloads=[{"group": int(i % 3)}
                            for i in range(len(data))])
    engine.flush("docs")
    engine.insert("docs", extra)    # unsealed rows: the WAL-replay path
    engine.delete("docs", [0, 1, int(len(data))])
    return engine


def _crash_cells(quick: bool) -> list[tuple[str, int, float | None]]:
    cells: list[tuple[str, int, float | None]] = []
    for point in SAVE_CRASH_POINTS:
        occurrences = (0,) if quick or point.startswith("save.manifest") \
            or point == "save.cleanup" else (0, 2)
        for occurrence in occurrences:
            cells.append((point, occurrence, None))
            if point.endswith(".write") and (not quick
                                             or point == "save.manifest.write"):
                cells.append((point, occurrence, 0.5))
    return cells


def run_recover_study(quick: bool = False,
                      seed: int = 42) -> dict[str, t.Any]:
    """Run the full crash x corruption matrix; returns report data."""
    n = 120 if quick else 240
    data = make_vectors(n, 16, n_clusters=8, seed=seed, latent_dim=6)
    extra = make_vectors(24, 16, n_clusters=4, seed=seed + 1,
                         latent_dim=6)
    rng = np.random.default_rng(seed)
    queries = data[rng.integers(0, n, size=4 if quick else 8)]

    crash_rows = []
    workdir = Path(tempfile.mkdtemp(prefix="repro-recover-"))
    try:
        for point, occurrence, torn in _crash_cells(quick):
            root = workdir / f"{point}-{occurrence}-{torn}"
            old_engine = _build_engine(data, extra)
            save_engine(old_engine, root)
            old_prints = _fingerprint(old_engine, queries)
            # Mutations that visibly move every query's top-k: delete
            # the current best hit of query 0 and insert exact
            # duplicates of all queries — otherwise "old" and "new"
            # would be indistinguishable and the matrix vacuous.
            best = old_engine.search("docs", queries[0], 1,
                                     ef_search=40).ids
            old_engine.delete("docs", [int(best[0])])
            old_engine.insert("docs", queries)
            new_prints = _fingerprint(old_engine, queries)
            if new_prints == old_prints:
                raise AssertionError(
                    "recover study: old and new states fingerprint "
                    "identically; the matrix would prove nothing")
            injector = CrashInjector(
                CrashPlan.of(point, occurrence, torn_fraction=torn))
            crashed = False
            try:
                save_engine(old_engine, root, crash=injector)
            except InjectedCrash:
                crashed = True
            recovered = load_engine(root)
            prints = _fingerprint(recovered, queries)
            state = ("old" if prints == old_prints else
                     "new" if prints == new_prints else "HYBRID")
            repair(root)
            healthy = scrub(root).ok
            # A recovered engine must be able to carry on: complete the
            # interrupted save and land bit-identically on the new state.
            save_engine(recovered if state == "old" else old_engine, root)
            resumed = (_fingerprint(load_engine(root), queries)
                       == (old_prints if state == "old" else new_prints))
            crash_rows.append({
                "point": point, "occurrence": occurrence, "torn": torn,
                "crashed": crashed, "state": state,
                "repaired_scrub_ok": healthy, "resumed_ok": resumed})
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    torn_wal = _torn_wal_case(seed)
    corruption = _corruption_case(data, quick, seed)
    verdicts = {
        "crash_consistency": all(
            row["crashed"] and row["state"] in ("old", "new")
            for row in crash_rows),
        "repair_restores_health": all(
            row["repaired_scrub_ok"] for row in crash_rows),
        "bit_identical_resume": all(
            row["resumed_ok"] for row in crash_rows),
        "wal_torn_tail_recovery": torn_wal["ok"],
        "corruption_detection": corruption["ok"],
    }
    return {"crash_matrix": crash_rows, "torn_wal": torn_wal,
            "corruption": corruption, "verdicts": verdicts,
            "quick": quick, "seed": seed}


def _torn_wal_case(seed: int) -> dict[str, t.Any]:
    """Append entries, tear the last record, recover the prefix."""
    from repro.engines.wal import WriteAheadLog
    workdir = Path(tempfile.mkdtemp(prefix="repro-recover-wal-"))
    try:
        path = workdir / "wal.log"
        wal = WriteAheadLog()
        vector = np.arange(8, dtype=np.float32)
        injector = CrashInjector(
            CrashPlan.of("wal.append.write", occurrence=5,
                         torn_fraction=0.5))
        appender = WalAppender(path, crash=injector)
        appended = 0
        try:
            for i in range(8):
                appender.append(wal.append("insert", i, vector))
                appended += 1
        except InjectedCrash:
            pass
        size_before = path.stat().st_size
        recovered = load_wal(path)
        return {"appended": appended, "recovered": len(recovered),
                "truncated_bytes": size_before - path.stat().st_size,
                "ok": (len(recovered) == appended
                       and path.stat().st_size < size_before
                       and [e.row_id for e in recovered.entries]
                       == list(range(appended)))}
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _corruption_case(data: np.ndarray, quick: bool,
                     seed: int) -> dict[str, t.Any]:
    """Flip committed bytes; scrub must attribute every damaged file."""
    workdir = Path(tempfile.mkdtemp(prefix="repro-recover-rot-"))
    try:
        detected = 0
        injected_files = 0
        load_refused = True
        rounds = 2 if quick else 6
        for round_ in range(rounds):
            root = workdir / f"rot{round_}"
            engine = _build_engine(data, data[:16])
            save_engine(engine, root)
            plan = CorruptionPlan(seed=seed + round_, flips=4)
            damaged = {c.file for c in plan.apply(root)}
            injected_files += len(damaged)
            report = scrub(root)
            flagged = {finding.file for finding in report.corruptions}
            detected += len(damaged & flagged)
            try:
                # The plan only ever flips committed bytes, so a load
                # that does not refuse has deserialized bit rot.
                load_engine(root)
                load_refused = False
            except CorruptionError:
                pass
        return {"injected_files": injected_files, "detected": detected,
                "load_refused": load_refused,
                "ok": detected == injected_files and load_refused}
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
