"""Crash-consistent durability: checksummed store, recoverable WAL.

The paper's storage-based engines survive restarts because their
on-disk index formats are durable artifacts; this package gives the
reproduction the same property.  Four layers:

* :mod:`repro.durability.record` — CRC32C-framed records, the unit
  every durable file is built from;
* :mod:`repro.durability.atomic` — temp-file + fsync + atomic-rename
  replacement, with declared crash points;
* :mod:`repro.durability.walio` — record-framed WAL files: atomic
  snapshots, torn-tail-tolerant recovery, per-record appends;
* :mod:`repro.durability.store` — the versioned segment store whose
  ``MANIFEST`` rename is the single commit point, plus ``scrub()`` /
  ``repair()``.

:class:`~repro.engines.engine.VectorEngine.save` / ``load`` and
:class:`~repro.engines.wal.WriteAheadLog.save` / ``load`` delegate
here; :mod:`repro.faults.crash` supplies the crash/corruption plans and
``repro recover`` (:mod:`repro.durability.study`) drives the full
crash x corruption recovery matrix.  Format, invariants, and the
recovery state machine are documented in ``docs/DURABILITY.md``.
"""

from repro.durability.atomic import atomic_write_bytes, fsync_dir
from repro.durability.record import crc32c, frame, read_frames, scan_frames
from repro.durability.store import (CORRUPTION_KINDS, FORMAT, MANIFEST_NAME,
                                    Manifest, ManifestEntry, RepairReport,
                                    ScrubFinding, ScrubReport, load_engine,
                                    read_manifest, repair, save_engine,
                                    scrub)
from repro.durability.walio import WalAppender, load_wal, save_wal

#: Every declared crash point a :class:`~repro.faults.crash.CrashPlan`
#: can kill at.  ``save.data.*`` and ``save.manifest.*`` fire inside
#: :func:`atomic_write_bytes` (per data file / for the manifest swap);
#: ``save.cleanup`` fires after commit, before old versions are
#: deleted; ``wal.append.*`` fire inside
#: :class:`~repro.durability.walio.WalAppender`.  Everything strictly
#: before ``save.manifest.rename``'s rename leaves the *old* committed
#: state; ``save.cleanup`` leaves the *new* one.
CRASH_POINTS = (
    "save.data.write",
    "save.data.fsync",
    "save.data.rename",
    "save.manifest.write",
    "save.manifest.fsync",
    "save.manifest.rename",
    "save.cleanup",
    "wal.append.write",
    "wal.append.fsync",
)

#: The crash points that interrupt an engine save (the recover matrix).
SAVE_CRASH_POINTS = tuple(p for p in CRASH_POINTS
                          if p.startswith("save."))

__all__ = [
    "CORRUPTION_KINDS",
    "CRASH_POINTS",
    "FORMAT",
    "MANIFEST_NAME",
    "Manifest",
    "ManifestEntry",
    "RepairReport",
    "SAVE_CRASH_POINTS",
    "ScrubFinding",
    "ScrubReport",
    "WalAppender",
    "atomic_write_bytes",
    "crc32c",
    "frame",
    "fsync_dir",
    "load_engine",
    "load_wal",
    "read_frames",
    "read_manifest",
    "repair",
    "save_engine",
    "save_wal",
    "scan_frames",
    "scrub",
]
