"""The crash-consistent segment store: versioned manifest + record files.

On-disk layout of one saved :class:`~repro.engines.engine.VectorEngine`
(``<root>`` is the path handed to ``save``)::

    <root>/
      MANIFEST                  one framed JSON record: the commit point
      v000001-engine.rec        engine metadata (profile, seed)
      v000001-c0000-meta.rec    collection 0: config, payloads, tombstones
      v000001-c0000-seg0000.rec one sealed segment (vectors + index)
      v000001-c0000-seg0001.rec
      v000001-c0000-wal.rec     the collection's record-framed WAL

Every ``.rec`` file is a sequence of checksummed frames
(:mod:`repro.durability.record`); the unsealed (growing) rows are *not*
stored as a file — they are rebuilt at load time by replaying WAL
entries past ``checkpointed_through``, the way a real log-structured
engine recovers its memtable.

**Commit-point argument.**  A save never touches the previous
version's files: it writes a fresh ``v<N+1>-*`` file set (each via
temp + fsync + atomic rename), then atomically renames the new
``MANIFEST`` over the old one, then deletes the files the new manifest
no longer references.  The manifest rename is therefore the *single*
commit point: a crash anywhere before it leaves the old ``MANIFEST``
naming only old files (all still present — cleanup happens after
commit); a crash after it leaves the new ``MANIFEST`` naming only new
files (all already fsynced — they were written first).  ``load`` reads
only what the manifest names, so it observes exactly the old state or
exactly the new one, never a hybrid; at worst some orphaned files from
the interrupted save linger until ``repair()``.

``scrub`` verifies every manifest-referenced byte (file lengths,
file-level CRC32C, every record frame) and attributes damage to a file
and record; ``repair`` removes the orphans a crash can strand.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import re
import typing as t
from pathlib import Path

from repro.durability.atomic import TMP_SUFFIX, atomic_write_bytes
from repro.durability.record import crc32c, frame, frame_all, read_frames, \
    scan_frames
from repro.durability.walio import wal_from_payloads, wal_payloads
from repro.errors import (CorruptionError, DurabilityError, RecoveryError)

if t.TYPE_CHECKING:
    from repro.engines.engine import VectorEngine
    from repro.faults.crash import CrashInjector
    from repro.obs.telemetry import RunTelemetry

#: The manifest file name — the store's commit point.
MANIFEST_NAME = "MANIFEST"

#: On-disk format version this code writes (and the only one it reads).
FORMAT = 1

_VERSION_PREFIX = re.compile(r"^v(\d{6})-")


@dataclasses.dataclass(frozen=True)
class ManifestEntry:
    """One committed file: name, role, and its expected bytes."""

    name: str
    role: str            # "engine-meta" | "collection-meta" | "segment" | "wal"
    nbytes: int
    crc: int
    collection: str | None = None
    segment_id: int | None = None


@dataclasses.dataclass(frozen=True)
class Manifest:
    """The committed state: format, version, and the exact file set."""

    format: int
    version: int
    entries: tuple[ManifestEntry, ...]

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"format": self.format, "version": self.version,
             "entries": [dataclasses.asdict(e) for e in self.entries]},
            sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, data: bytes, *, source: str = MANIFEST_NAME,
                   ) -> "Manifest":
        try:
            raw = json.loads(data.decode())
            entries = tuple(ManifestEntry(**e) for e in raw["entries"])
            manifest = cls(int(raw["format"]), int(raw["version"]), entries)
        except (ValueError, KeyError, TypeError) as exc:
            raise CorruptionError(
                f"{source}: manifest does not decode: {exc}",
                file=source, record=0) from exc
        if manifest.format != FORMAT:
            raise DurabilityError(
                f"{source}: format {manifest.format} is not {FORMAT}")
        return manifest

    def entry(self, role: str, collection: str | None = None,
              ) -> ManifestEntry:
        found = [e for e in self.entries
                 if e.role == role and e.collection == collection]
        if len(found) != 1:
            raise CorruptionError(
                f"manifest names {len(found)} {role!r} files for "
                f"collection {collection!r}, expected 1",
                file=MANIFEST_NAME)
        return found[0]


def read_manifest(root: str | Path) -> Manifest:
    """The committed manifest of the store at *root* (strict)."""
    path = Path(root) / MANIFEST_NAME
    if not path.exists():
        raise RecoveryError(
            f"{root}: no committed {MANIFEST_NAME}; nothing to recover")
    records = read_frames(path.read_bytes(), source=MANIFEST_NAME)
    if len(records) != 1:
        raise CorruptionError(
            f"{MANIFEST_NAME}: expected 1 record, found {len(records)}",
            file=MANIFEST_NAME)
    return Manifest.from_bytes(records[0])


def _scan_version(root: Path) -> int:
    """Highest version number visible in the directory's file names."""
    best = 0
    for path in root.iterdir():
        match = _VERSION_PREFIX.match(path.name)
        if match:
            best = max(best, int(match.group(1)))
    return best


def _pickled(obj: t.Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def save_engine(engine: "VectorEngine", path: str | Path, *,
                crash: "CrashInjector | None" = None,
                telemetry: "RunTelemetry | None" = None) -> Manifest:
    """Persist *engine* at *path* as a new committed store version."""
    root = Path(path)
    if root.exists() and not root.is_dir():
        # A legacy single-file snapshot is being upgraded in place; the
        # unchecksummed blob is the only copy, so it is read fully by
        # ``load`` paths, never by ``save`` — replace it with a store.
        root.unlink()
    root.mkdir(parents=True, exist_ok=True)
    version = _scan_version(root) + 1
    prefix = f"v{version:06d}-"
    entries: list[ManifestEntry] = []

    def put(name: str, payloads: t.Sequence[bytes], role: str,
            collection: str | None = None,
            segment_id: int | None = None) -> None:
        data = frame_all(payloads)
        atomic_write_bytes(root / name, data, crash=crash,
                           label="save.data")
        entries.append(ManifestEntry(name, role, len(data), crc32c(data),
                                     collection, segment_id))

    put(f"{prefix}engine.rec",
        [_pickled({"profile": engine.profile, "seed": engine.seed})],
        "engine-meta")
    for index, (name, collection) in enumerate(
            engine._collections.items()):
        stem = f"{prefix}c{index:04d}"
        put(f"{stem}-meta.rec",
            [_pickled({"name": name, "dim": collection.dim,
                       "storage_dim": collection.storage_dim,
                       "index_spec": collection.index_spec,
                       "seed": collection.seed,
                       "tombstones": set(collection.tombstones),
                       "next_row_id": collection._next_row_id,
                       "payloads": collection.payloads})],
            "collection-meta", name)
        for segment in collection.segments:
            put(f"{stem}-seg{segment.segment_id:04d}.rec",
                [_pickled(segment)], "segment", name, segment.segment_id)
        put(f"{stem}-wal.rec", wal_payloads(collection.wal), "wal", name)

    manifest = Manifest(FORMAT, version, tuple(entries))
    atomic_write_bytes(root / MANIFEST_NAME, frame(manifest.to_bytes()),
                       crash=crash, label="save.manifest")
    # -- committed: everything below is post-commit housekeeping ---------
    if crash is not None:
        crash.reached("save.cleanup")
    keep = {entry.name for entry in manifest.entries} | {MANIFEST_NAME}
    for stray in root.iterdir():
        if stray.is_file() and stray.name not in keep:
            stray.unlink()
    if telemetry is not None:
        telemetry.on_durability("saves")
        telemetry.on_durability("records_written",
                                sum(1 for _ in manifest.entries))
    return manifest


def _verified_records(root: Path, entry: ManifestEntry) -> list[bytes]:
    """Read one committed file, enforcing its manifest fingerprint."""
    path = root / entry.name
    if not path.exists():
        raise CorruptionError(f"{entry.name}: committed file is missing",
                              file=entry.name)
    data = path.read_bytes()
    if len(data) != entry.nbytes:
        raise CorruptionError(
            f"{entry.name}: {len(data)} bytes on disk, manifest says "
            f"{entry.nbytes}", file=entry.name)
    records = read_frames(data, source=entry.name)
    if crc32c(data) != entry.crc:
        raise CorruptionError(
            f"{entry.name}: file checksum mismatch", file=entry.name)
    return records


def load_engine(path: str | Path, *,
                telemetry: "RunTelemetry | None" = None) -> "VectorEngine":
    """Recover the committed engine state at *path*.

    Accepts both the checksummed store directory and the legacy
    single-file pickle snapshot (pre-durability saves).
    """
    from repro.engines.engine import Collection, VectorEngine
    root = Path(path)
    if root.is_file():
        return _load_legacy(root)
    manifest = read_manifest(root)
    engine_meta = pickle.loads(
        _verified_records(root, manifest.entry("engine-meta"))[0])
    engine = VectorEngine(engine_meta["profile"], engine_meta["seed"])
    metas = [e for e in manifest.entries if e.role == "collection-meta"]
    replayed = 0
    for meta_entry in metas:
        meta = pickle.loads(_verified_records(root, meta_entry)[0])
        name = meta["name"]
        collection = Collection(name, meta["dim"], meta["index_spec"],
                                engine.profile, meta["storage_dim"],
                                seed=meta["seed"])
        collection.payloads = meta["payloads"]
        from repro.mutate.tombstones import Tombstones
        collection.tombstones = Tombstones(meta["tombstones"])
        collection._next_row_id = meta["next_row_id"]
        segment_entries = sorted(
            (e for e in manifest.entries
             if e.role == "segment" and e.collection == name),
            key=lambda e: e.segment_id)
        collection.segments = [
            pickle.loads(_verified_records(root, e)[0])
            for e in segment_entries]
        wal = wal_from_payloads(
            _verified_records(root, manifest.entry("wal", name)),
            source=manifest.entry("wal", name).name)
        collection.wal = wal
        # Replay unsealed mutations to rebuild the growing buffer: the
        # payload/tombstone snapshots already include their effects, so
        # re-applying those parts is idempotent by construction.
        for entry in wal.entries:
            if entry.sequence <= wal.checkpointed_through:
                continue
            if entry.op == "insert":
                collection.growing.append(entry.row_id, entry.vector)
                if entry.row_id not in collection.tombstones:
                    collection.payloads.put(entry.row_id, entry.payload)
            else:
                collection.tombstones.add(entry.row_id)
                collection.payloads.delete(entry.row_id)
            replayed += 1
        engine._collections[name] = collection
    if telemetry is not None:
        telemetry.on_durability("loads")
        if replayed:
            telemetry.on_durability("wal_replayed", replayed)
    return engine


def _load_legacy(path: Path) -> "VectorEngine":
    """Read a pre-durability whole-engine pickle snapshot."""
    from repro.engines.engine import VectorEngine
    try:
        with open(path, "rb") as handle:
            profile, seed, collections = pickle.load(handle)
    except Exception as exc:
        raise CorruptionError(
            f"{path.name}: legacy snapshot does not load: {exc}",
            file=path.name) from exc
    engine = VectorEngine(profile, seed)
    engine._collections = collections
    return engine


# -- scrub / repair ------------------------------------------------------

#: Finding kinds that mean committed data is damaged (vs. merely untidy).
CORRUPTION_KINDS = ("missing-file", "length-mismatch", "bad-magic",
                    "bad-crc", "torn-frame", "manifest-unreadable")


@dataclasses.dataclass(frozen=True)
class ScrubFinding:
    """One problem the scrubber attributed: which file, which record."""

    file: str
    kind: str
    record: int | None = None
    detail: str = ""

    @property
    def is_corruption(self) -> bool:
        return self.kind in CORRUPTION_KINDS


@dataclasses.dataclass(frozen=True)
class ScrubReport:
    """Everything a full store verification found."""

    findings: tuple[ScrubFinding, ...]
    files_checked: int
    records_checked: int

    @property
    def corruptions(self) -> tuple[ScrubFinding, ...]:
        return tuple(f for f in self.findings if f.is_corruption)

    @property
    def ok(self) -> bool:
        """True when every committed byte verified (orphans allowed)."""
        return not self.corruptions


def scrub(path: str | Path, *,
          telemetry: "RunTelemetry | None" = None) -> ScrubReport:
    """Verify every committed byte of the store at *path*.

    Checks, per manifest-referenced file: existence, exact length,
    file-level CRC32C, and every record frame — attributing each
    failure to a file and (when determinable) a record index.
    Unreferenced files are reported as ``orphan-file`` findings, which
    do not make the store unhealthy (``repair`` removes them).
    """
    root = Path(path)
    findings: list[ScrubFinding] = []
    files_checked = 0
    records_checked = 0
    manifest: Manifest | None = None
    try:
        manifest = read_manifest(root)
        files_checked += 1   # the manifest itself parsed and verified
    except CorruptionError as exc:
        findings.append(ScrubFinding(MANIFEST_NAME, "manifest-unreadable",
                                     exc.record, str(exc)))
    by_name = ({e.name: e for e in manifest.entries}
               if manifest is not None else {})
    for name in sorted(by_name):
        if not (root / name).exists():
            findings.append(ScrubFinding(name, "missing-file"))
    # Every record file is self-verifying (each frame carries its own
    # CRC), so frames are scanned even when the manifest is damaged —
    # one flipped manifest byte must not mask damage elsewhere.
    scannable = sorted(p.name for p in root.iterdir() if p.is_file()
                       and p.name != MANIFEST_NAME
                       and not p.name.endswith(TMP_SUFFIX)
                       ) if root.is_dir() else []
    for name in scannable:
        files_checked += 1
        data = (root / name).read_bytes()
        records, valid_bytes, problem = scan_frames(data)
        records_checked += len(records)
        entry = by_name.get(name)
        if problem is not None:
            findings.append(ScrubFinding(name, problem, len(records),
                                         f"byte offset {valid_bytes}"))
        elif entry is not None and len(data) != entry.nbytes:
            findings.append(ScrubFinding(
                name, "length-mismatch", None,
                f"{len(data)} bytes vs manifest {entry.nbytes}"))
        elif entry is not None and crc32c(data) != entry.crc:
            findings.append(ScrubFinding(name, "bad-crc"))
        if entry is None and manifest is not None:
            findings.append(ScrubFinding(name, "orphan-file"))
    if root.is_dir():
        for stray in sorted(root.iterdir()):
            if stray.is_file() and stray.name.endswith(TMP_SUFFIX):
                findings.append(ScrubFinding(stray.name, "orphan-file"))
    report = ScrubReport(tuple(findings), files_checked, records_checked)
    if telemetry is not None:
        telemetry.on_durability("scrubs")
        telemetry.on_durability("records_verified", records_checked)
        if report.corruptions:
            telemetry.on_durability("scrub_findings",
                                    len(report.corruptions))
    return report


@dataclasses.dataclass(frozen=True)
class RepairReport:
    """What ``repair`` cleaned up."""

    removed: tuple[str, ...]


def repair(path: str | Path, *,
           telemetry: "RunTelemetry | None" = None) -> RepairReport:
    """Remove the orphans an interrupted save can strand.

    Deletes in-flight temp files and files no longer (or never)
    referenced by the committed manifest.  Never touches a referenced
    file: damage to committed data is *detected* (by ``scrub``/``load``)
    but cannot be regenerated from a single copy, so it is surfaced,
    not silently "fixed".  Stores without any committed manifest only
    lose their temp files — data files are kept for forensics.
    """
    root = Path(path)
    try:
        manifest: Manifest | None = read_manifest(root)
    except (RecoveryError, CorruptionError):
        manifest = None
    referenced = {MANIFEST_NAME}
    if manifest is not None:
        referenced |= {entry.name for entry in manifest.entries}
    removed = []
    for stray in sorted(root.iterdir()) if root.is_dir() else []:
        if not stray.is_file() or stray.name in referenced:
            continue
        if manifest is not None or stray.name.endswith(TMP_SUFFIX):
            stray.unlink()
            removed.append(stray.name)
    if telemetry is not None and removed:
        telemetry.on_durability("repair_removed", len(removed))
    return RepairReport(tuple(removed))
