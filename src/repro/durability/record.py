"""Checksummed record framing: the byte-level unit of the durable store.

Every durable file this library writes — segment files, manifests, the
write-ahead log — is a sequence of *framed records*:

::

    +------+----------+-----------+=========+
    | RPR1 | length   | CRC32C    | payload |  (repeated)
    | 4 B  | u32 LE   | u32 LE    | length B|
    +------+----------+-----------+=========+

The CRC is CRC-32C (Castagnoli), the polynomial used by ext4 metadata
checksums, iSCSI, and RocksDB's log format, computed over the payload.
Any single flipped byte anywhere in a frame — magic, length, checksum,
or payload — is detectable: a damaged magic fails the marker check, a
damaged length either desynchronizes into a bad magic or runs past EOF,
and a damaged checksum or payload fails verification.

Two read modes:

* :func:`read_frames` — strict: any damage raises
  :class:`~repro.errors.CorruptionError` with file/record attribution;
* :func:`scan_frames` — tolerant: returns the valid prefix plus *what*
  stopped the scan and *where*, which is how WAL recovery
  distinguishes a torn tail (incomplete frame at EOF — truncate and
  continue) from mid-file corruption (a complete frame that fails its
  checksum — refuse and surface).

>>> blob = frame(b"hello") + frame(b"world")
>>> read_frames(blob)
[b'hello', b'world']
>>> records, valid_bytes, problem = scan_frames(blob + b"RPR1\\x99")
>>> (records, problem)
([b'hello', b'world'], 'torn-frame')
>>> blob[:valid_bytes] == blob
True
"""

from __future__ import annotations

import struct
import typing as t

from repro.errors import CorruptionError

#: Frame marker: repro record format, version 1.
MAGIC = b"RPR1"
HEADER = struct.Struct("<4sII")   # magic, payload length, payload CRC32C

#: Largest payload a frame may carry (guards against reading a wild
#: length as an allocation size).
MAX_PAYLOAD = 1 << 31

_CASTAGNOLI = 0x82F63B78


def _make_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CASTAGNOLI if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _make_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C (Castagnoli) of *data*.

    >>> hex(crc32c(b"123456789"))   # the standard check value
    '0xe3069283'
    """
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def frame(payload: bytes) -> bytes:
    """One framed record: header (magic, length, CRC32C) + payload."""
    if len(payload) >= MAX_PAYLOAD:
        raise CorruptionError(
            f"payload too large to frame: {len(payload)} bytes")
    return HEADER.pack(MAGIC, len(payload), crc32c(payload)) + payload


def frame_all(payloads: t.Iterable[bytes]) -> bytes:
    """Concatenated frames of *payloads* — one durable file's bytes."""
    return b"".join(frame(payload) for payload in payloads)


def scan_frames(data: bytes) -> tuple[list[bytes], int, str | None]:
    """Tolerantly parse frames from *data*.

    Returns ``(records, valid_bytes, problem)``: the records of the
    longest valid prefix, how many bytes it spans, and why the scan
    stopped — ``None`` (clean EOF), ``"torn-frame"`` (an incomplete
    frame runs into EOF: a torn write, safely truncatable), or
    ``"bad-magic"`` / ``"bad-crc"`` (a *complete* frame is damaged:
    real corruption, not truncatable).
    """
    records: list[bytes] = []
    position = 0
    while position < len(data):
        header = data[position:position + HEADER.size]
        if len(header) < HEADER.size:
            return records, position, "torn-frame"
        magic, length, crc = HEADER.unpack(header)
        if magic != MAGIC:
            return records, position, "bad-magic"
        if length >= MAX_PAYLOAD:
            return records, position, "bad-magic"
        payload = data[position + HEADER.size:
                       position + HEADER.size + length]
        if len(payload) < length:
            return records, position, "torn-frame"
        if crc32c(payload) != crc:
            return records, position, "bad-crc"
        records.append(payload)
        position += HEADER.size + length
    return records, position, None


def read_frames(data: bytes, *, source: str = "<bytes>") -> list[bytes]:
    """Strictly parse frames; any damage raises CorruptionError.

    The error is attributed: ``file`` is *source* and ``record`` the
    index of the first damaged record.
    """
    records, valid_bytes, problem = scan_frames(data)
    if problem is not None:
        raise CorruptionError(
            f"{source}: {problem} at record {len(records)} "
            f"(byte offset {valid_bytes})",
            file=source, record=len(records))
    return records
