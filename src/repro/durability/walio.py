"""Record-framed write-ahead-log files: append, snapshot, recover.

A WAL file is a sequence of framed records (see
:mod:`repro.durability.record`), each carrying one of:

* ``("entry", WalEntry)`` — one logged mutation;
* ``("checkpoint", through)`` — everything with ``sequence <= through``
  is durable in the main store.

Two writers share the format: :func:`save_wal` snapshots a whole
in-memory log atomically (temp + fsync + rename), and
:class:`WalAppender` appends one fsynced record per mutation — the
shape whose tail a power cut can tear.  :func:`load_wal` recovers
either: it accepts the longest valid prefix, *truncates* a torn tail in
place (an incomplete frame at EOF is a write that never completed, so
dropping it is exactly what a real log replay does), and refuses
mid-file damage — a complete frame failing its checksum is corruption,
not a torn write, and silently dropping everything after it would lose
acknowledged mutations.

Replay semantics live with the engine loader
(:func:`repro.durability.store.load_engine`): entries with
``sequence > checkpointed_through`` are re-applied to rebuild the
unsealed (growing) rows.
"""

from __future__ import annotations

import os
import pickle
import typing as t
from pathlib import Path

from repro.durability.atomic import atomic_write_bytes
from repro.durability.record import frame, scan_frames
from repro.engines.wal import WalEntry, WriteAheadLog
from repro.errors import CorruptionError

if t.TYPE_CHECKING:
    from repro.faults.crash import CrashInjector
    from repro.obs.telemetry import RunTelemetry


def wal_payloads(wal: WriteAheadLog) -> list[bytes]:
    """The record payloads of a full snapshot of *wal*."""
    payloads = [pickle.dumps(("entry", entry),
                             protocol=pickle.HIGHEST_PROTOCOL)
                for entry in wal.entries]
    payloads.append(pickle.dumps(("checkpoint", wal.checkpointed_through),
                                 protocol=pickle.HIGHEST_PROTOCOL))
    return payloads


def wal_from_payloads(payloads: t.Sequence[bytes], *,
                      source: str = "<wal>") -> WriteAheadLog:
    """Rebuild an in-memory log from decoded record payloads."""
    wal = WriteAheadLog()
    entries: list[WalEntry] = []
    through = -1
    for index, payload in enumerate(payloads):
        try:
            kind, value = pickle.loads(payload)
        except Exception as exc:
            raise CorruptionError(
                f"{source}: record {index} does not decode: {exc}",
                file=source, record=index) from exc
        if kind == "entry":
            entries.append(value)
        elif kind == "checkpoint":
            through = max(through, int(value))
        else:
            raise CorruptionError(
                f"{source}: record {index} has unknown kind {kind!r}",
                file=source, record=index)
    wal._entries = entries
    wal.checkpointed_through = through
    wal._next_sequence = max(
        [through + 1] + [entry.sequence + 1 for entry in entries])
    return wal


def save_wal(wal: WriteAheadLog, path: str | Path, *,
             crash: "CrashInjector | None" = None) -> None:
    """Atomically snapshot *wal* to a record-framed file."""
    data = b"".join(frame(payload) for payload in wal_payloads(wal))
    atomic_write_bytes(path, data, crash=crash, label="wal.save")


def load_wal(path: str | Path, *, repair_torn: bool = True,
             telemetry: "RunTelemetry | None" = None) -> WriteAheadLog:
    """Recover a log file, truncating a torn tail.

    ``repair_torn=False`` turns the torn-tail case into a
    :class:`~repro.errors.CorruptionError` instead of a truncation
    (for read-only inspection of a suspect file).
    """
    path = Path(path)
    data = path.read_bytes()
    payloads, valid_bytes, problem = scan_frames(data)
    if problem == "torn-frame" and repair_torn:
        with open(path, "r+b") as handle:
            handle.truncate(valid_bytes)
        if telemetry is not None:
            telemetry.on_durability("torn_tail_truncated")
    elif problem is not None:
        raise CorruptionError(
            f"{path.name}: {problem} at record {len(payloads)} "
            f"(byte offset {valid_bytes})",
            file=path.name, record=len(payloads))
    return wal_from_payloads(payloads, source=path.name)


class WalAppender:
    """Append-only writer: one fsynced framed record per mutation.

    This is the write shape a crash can tear mid-record — the crash
    points ``wal.append.write`` (before the record's bytes reach the
    file; a torn plan leaves a prefix) and ``wal.append.fsync``
    (written but not yet durable) let the recovery tests generate
    exactly that file state for :func:`load_wal` to repair.
    """

    def __init__(self, path: str | Path,
                 crash: "CrashInjector | None" = None) -> None:
        self.path = Path(path)
        self.crash = crash
        self.path.touch(exist_ok=True)

    def _append(self, payload: t.Any) -> None:
        data = frame(pickle.dumps(payload,
                                  protocol=pickle.HIGHEST_PROTOCOL))
        if self.crash is not None:
            self.crash.reached("wal.append.write", self.path, data,
                               append=True)
        with open(self.path, "ab") as handle:
            handle.write(data)
            handle.flush()
            if self.crash is not None:
                self.crash.reached("wal.append.fsync", self.path, data)
            os.fsync(handle.fileno())

    def append(self, entry: WalEntry) -> None:
        self._append(("entry", entry))

    def checkpoint(self, through: int) -> None:
        self._append(("checkpoint", through))
