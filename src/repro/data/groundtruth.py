"""Exact nearest neighbours and the recall@k accuracy metric.

``recall@k = |K intersect K'| / k`` exactly as defined in paper
Section II-A, with ground truth from a blocked brute-force scan.
"""

from __future__ import annotations

import numpy as np

from repro.ann.distance import pairwise, top_k
from repro.errors import DatasetError


def exact_knn(X: np.ndarray, queries: np.ndarray, k: int,
              metric: str, block: int = 1024) -> np.ndarray:
    """(n_queries, k) ids of each query's true nearest neighbours."""
    X = np.asarray(X, dtype=np.float32)
    queries = np.asarray(queries, dtype=np.float32)
    if k <= 0 or k > X.shape[0]:
        raise DatasetError(f"bad k={k} for dataset of {X.shape[0]}")
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    for start in range(0, queries.shape[0], block):
        stop = min(start + block, queries.shape[0])
        dists = pairwise(queries[start:stop], X, metric)
        for row, dist_row in enumerate(dists):
            out[start + row] = top_k(dist_row, k)
    return out


def recall_at_k(truth: np.ndarray, found: np.ndarray, k: int) -> float:
    """Mean recall@k over all queries.

    *found* rows may be shorter than k (an index may return fewer);
    missing entries simply count as misses.
    """
    truth = np.asarray(truth)
    if truth.ndim != 2 or truth.shape[1] < k:
        raise DatasetError(f"ground truth too narrow for k={k}")
    if len(truth) != len(found):
        raise DatasetError(
            f"ground truth has {len(truth)} rows, results {len(found)}")
    total = 0.0
    for truth_row, found_row in zip(truth, found):
        total += len(set(truth_row[:k]) & set(np.asarray(found_row)[:k])) / k
    return total / len(truth)
