"""Synthetic proxy datasets for the paper's Cohere/OpenAI workloads."""

from repro.data.groundtruth import exact_knn, recall_at_k
from repro.data.registry import Dataset, load_dataset
from repro.data.spec import (DATASET_NAMES, SCALE_FACTORS, SCALING_PAIRS,
                             DatasetSpec, current_scale, get_spec)
from repro.data.synthetic import make_dataset_vectors, make_queries, make_vectors

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "DatasetSpec",
    "SCALE_FACTORS",
    "SCALING_PAIRS",
    "current_scale",
    "exact_knn",
    "get_spec",
    "load_dataset",
    "make_dataset_vectors",
    "make_queries",
    "make_vectors",
    "recall_at_k",
]
