"""Clustered low-rank synthetic embedding generator.

Real text embeddings are (a) strongly clustered (same-topic documents
embed together) and (b) of low intrinsic dimension relative to their
ambient dimension — properties that ANN index behaviour (graph hop
counts, recall-vs-parameter curves, IVF cell balance) depends on.

The generator therefore samples points from a Gaussian-mixture in a
*latent* space of ``latent_dim`` dimensions, maps them through a fixed
random linear embedding into the ambient dimension, adds a little
ambient noise, and L2-normalizes (VectorDBBench's datasets use cosine
similarity).  Latent dimensions are tuned so the recall-vs-efSearch
landscape lands in the same region as the paper's Table II.

Queries are perturbed copies of randomly chosen database vectors —
in-distribution, but never exact duplicates.
"""

from __future__ import annotations

import numpy as np

from repro.ann.distance import normalize
from repro.data.spec import DatasetSpec
from repro.errors import DatasetError


def make_vectors(n: int, dim: int, n_clusters: int, seed: int,
                 latent_dim: int = 16, latent_spread: float = 0.5,
                 ambient_noise: float = 0.02) -> np.ndarray:
    """Generate *n* normalized clustered vectors of dimension *dim*."""
    if min(n, dim, n_clusters, latent_dim) <= 0:
        raise DatasetError(
            f"bad generator args: n={n} dim={dim} clusters={n_clusters} "
            f"latent={latent_dim}")
    if latent_dim > dim:
        raise DatasetError(f"latent_dim {latent_dim} exceeds dim {dim}")
    rng = np.random.default_rng(seed)
    basis = rng.standard_normal((latent_dim, dim)).astype(np.float32)
    basis /= np.sqrt(latent_dim)
    centers = rng.standard_normal((n_clusters, latent_dim)).astype(np.float32)
    # Zipf-ish cluster weights: a few large topics, many small ones.
    weights = 1.0 / np.arange(1, n_clusters + 1) ** 0.5
    weights /= weights.sum()
    assignments = rng.choice(n_clusters, size=n, p=weights)
    latent = centers[assignments] + (
        rng.standard_normal((n, latent_dim)).astype(np.float32)
        * latent_spread)
    X = latent @ basis + (
        rng.standard_normal((n, dim)).astype(np.float32) * ambient_noise)
    return normalize(X)


def make_dataset_vectors(spec: DatasetSpec) -> np.ndarray:
    """Generate the database vectors for *spec*."""
    return make_vectors(spec.n, spec.dim, spec.n_clusters, seed=spec.seed,
                        latent_dim=spec.latent_dim)


def make_queries(spec: DatasetSpec, vectors: np.ndarray,
                 n_queries: int | None = None,
                 perturbation: float = 0.25,
                 mode: str = "in-distribution") -> np.ndarray:
    """Query vectors for *spec*.

    ``in-distribution`` (default, the paper's workload): perturbed
    copies of random database vectors — never exact duplicates.
    ``ood``: queries drawn from a *different* cluster mixture, the
    out-of-distribution regime of OOD-DiskANN (paper ref [45]), where
    graph searches need larger candidate lists for the same recall.
    """
    if n_queries is None:
        n_queries = spec.n_queries
    if n_queries <= 0:
        raise DatasetError(f"bad n_queries: {n_queries}")
    if mode == "ood":
        return make_vectors(n_queries, spec.dim,
                            n_clusters=max(8, spec.n_clusters // 2),
                            seed=spec.seed + 7_654_321,
                            latent_dim=spec.latent_dim)
    if mode != "in-distribution":
        raise DatasetError(f"unknown query mode {mode!r}")
    rng = np.random.default_rng(spec.seed + 1_000_003)
    rows = rng.integers(0, vectors.shape[0], size=n_queries)
    noise = rng.standard_normal(
        (n_queries, vectors.shape[1])).astype(np.float32) * perturbation
    return normalize(vectors[rows] + noise)
