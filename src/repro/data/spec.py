"""Dataset specifications: scaled-down proxies of the paper's datasets.

The paper benchmarks four VectorDBBench datasets — Cohere 1M/10M (768-d)
and OpenAI 500K/5M (1536-d).  Those embeddings are not available
offline, so each dataset is replaced by a clustered synthetic proxy
that preserves the properties the experiments depend on:

* the **10x cardinality ratio** between the small and large variant of
  each family (drives every scaling observation);
* the **nominal dimensionality** (768/1536), used for on-disk record
  layout so the I/O geometry matches (one vs two sectors per node);
* the 2x dimension ratio between families, reflected in the intrinsic
  dimension of the generated vectors (96 vs 192) and in distance cost;
* cosine as the similarity metric, as VectorDBBench uses for both.

``REPRO_SCALE`` (tiny/small/medium) multiplies all cardinalities; the
10x ratios are preserved at every scale.
"""

from __future__ import annotations

import dataclasses
import os

from repro.errors import DatasetError

SCALE_FACTORS = {"tiny": 1, "small": 4, "medium": 16}

DEFAULT_SCALE_ENV = "REPRO_SCALE"


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Identity and geometry of one benchmark dataset."""

    name: str
    n: int                 # vectors at the chosen scale
    dim: int               # intrinsic dimension of generated vectors
    storage_dim: int       # nominal on-disk dimension (paper's)
    n_queries: int
    paper_n: int           # cardinality in the paper
    n_clusters: int
    latent_dim: int = 16
    metric: str = "cosine"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0 or self.dim <= 0 or self.n_queries <= 0:
            raise DatasetError(f"bad dataset spec: {self}")

    @property
    def vector_bytes(self) -> int:
        """On-disk bytes of one full-precision vector."""
        return 4 * self.storage_dim


#: Per-dataset base geometry at scale factor 1 ("tiny").
_BASE = {
    "cohere-1m": dict(n=4_000, dim=96, storage_dim=768,
                      paper_n=1_000_000, seed=11, latent_dim=20),
    "cohere-10m": dict(n=40_000, dim=96, storage_dim=768,
                       paper_n=10_000_000, seed=12, latent_dim=20),
    "openai-500k": dict(n=2_000, dim=192, storage_dim=1536,
                        paper_n=500_000, seed=13, latent_dim=16),
    "openai-5m": dict(n=20_000, dim=192, storage_dim=1536,
                      paper_n=5_000_000, seed=14, latent_dim=16),
}

DATASET_NAMES = tuple(_BASE)

#: The paper pairs each small dataset with its 10x sibling.
SCALING_PAIRS = (("cohere-1m", "cohere-10m"), ("openai-500k", "openai-5m"))


def current_scale() -> str:
    """The scale selected via ``REPRO_SCALE`` (default: tiny)."""
    scale = os.environ.get(DEFAULT_SCALE_ENV, "tiny")
    if scale not in SCALE_FACTORS:
        raise DatasetError(
            f"unknown {DEFAULT_SCALE_ENV}={scale!r}; "
            f"choose from {sorted(SCALE_FACTORS)}")
    return scale


def get_spec(name: str, scale: str | None = None) -> DatasetSpec:
    """Look up a dataset spec at the given (or environment) scale."""
    if name not in _BASE:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    scale = scale or current_scale()
    if scale not in SCALE_FACTORS:
        raise DatasetError(f"unknown scale {scale!r}")
    base = _BASE[name]
    factor = SCALE_FACTORS[scale]
    n = base["n"] * factor
    return DatasetSpec(
        name=name,
        n=n,
        dim=base["dim"],
        storage_dim=base["storage_dim"],
        n_queries=200,
        paper_n=base["paper_n"],
        n_clusters=max(16, int(round(n ** 0.5 / 2))),
        latent_dim=base["latent_dim"],
        seed=base["seed"],
    )
