"""Loading datasets: generation + ground truth with in-process caching.

``load_dataset("cohere-1m")`` is the single entry point used by tests,
examples, and the benchmark harness.  Vectors are deterministic in the
spec's seed, so repeated loads (and loads in different processes) see
identical data.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.data.groundtruth import exact_knn
from repro.data.spec import DatasetSpec, get_spec
from repro.data.synthetic import make_dataset_vectors, make_queries


class Dataset:
    """A generated dataset: vectors, queries, and lazy ground truth."""

    def __init__(self, spec: DatasetSpec, vectors: np.ndarray,
                 queries: np.ndarray) -> None:
        self.spec = spec
        self.vectors = vectors
        self.queries = queries
        self._truth: dict[int, np.ndarray] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n(self) -> int:
        return self.vectors.shape[0]

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def ground_truth(self, k: int = 10) -> np.ndarray:
        """Exact top-k ids per query, computed once per k."""
        if k not in self._truth:
            self._truth[k] = exact_knn(self.vectors, self.queries, k,
                                       self.spec.metric)
        return self._truth[k]


@functools.lru_cache(maxsize=8)
def _load(name: str, scale: str) -> Dataset:
    spec = get_spec(name, scale)
    vectors = make_dataset_vectors(spec)
    return Dataset(spec, vectors, make_queries(spec, vectors))


def load_dataset(name: str, scale: str | None = None) -> Dataset:
    """Load (generating on first use) a named dataset at a scale."""
    spec = get_spec(name, scale)  # validates name/scale eagerly
    return _load(spec.name, scale or _scale_of(spec))


def _scale_of(spec: DatasetSpec) -> str:
    from repro.data.spec import current_scale
    return current_scale()
