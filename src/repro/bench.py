"""Wall-clock benchmark suite for the vectorized query hot path.

Where ``benchmarks/`` replays the *paper's* figures on simulated
hardware, this module measures the reproduction itself: how fast the
real kernels run on the machine executing them.  Four families of
numbers gate the batched hot path:

* **build time** per index kind,
* **single-query QPS** (the sequential ``search`` loop),
* **batch QPS** (``search_batch`` over the same query set),
* **sim-event throughput** of the discrete-event kernel, and
* **serve-path QPS** — the open-loop serving stack end to end
  (arrival timeline, admission queue, batching, timing replay),
  reporting both the simulated throughput and the wall-clock cost of
  replaying it.

Results are written as a schema-versioned JSON document
(``BENCH_<pr>.json`` at the repo root; see ``docs/BENCHMARKS.md``).
The committed trajectory is the regression gate: batched execution must
amortize kernel work — batch QPS at least 3x single-query QPS on the
flat and IVF kernels — while staying bit-identical to sequential
search (the property suite in ``tests/ann`` enforces the identity).

>>> from repro.bench import BenchConfig, validate_bench
>>> BenchConfig.quick().n < BenchConfig.full().n
True
"""

from __future__ import annotations

import dataclasses
import json
import time
import typing as t
from pathlib import Path

import numpy as np

from repro.ann.flat import FlatIndex
from repro.ann.ivf import IVFIndex
from repro.ann.pq import ProductQuantizer
from repro.errors import ReproError
from repro.simkernel import Environment

#: Version of the BENCH_*.json document layout.  Bump when fields are
#: added, removed, or change meaning; docs/BENCHMARKS.md describes each
#: version.  Version 2 adds the ``cluster`` section (coordinator QPS vs
#: shard count and the scatter-gather merge overhead); newer v2
#: documents (BENCH_10.json onward) also carry an *optional* ``serve``
#: section (open-loop serve-path QPS), validated when present.
BENCH_SCHEMA_VERSION = 2

#: Document versions :func:`validate_bench` accepts.  Committed v1
#: documents (BENCH_6.json and earlier) stay valid forever; only new
#: documents carry the v2 ``cluster`` section.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

#: Shard counts of the cluster scaling benchmark.
CLUSTER_FANOUTS = (1, 2, 4)


@dataclasses.dataclass(frozen=True)
class BenchConfig:
    """Sizing of one benchmark run."""

    n: int                 #: dataset rows
    dim: int               #: vector dimensionality
    n_queries: int         #: query-set size
    batch_size: int        #: queries per search_batch call
    k: int                 #: top-k
    repeats: int           #: timing repeats (best-of)
    sim_processes: int     #: concurrent processes in the sim benchmark
    sim_timeouts: int      #: timeout events per sim process
    metric: str = "cosine"

    @classmethod
    def quick(cls) -> "BenchConfig":
        """CI-sized run: seconds, not minutes."""
        return cls(n=2000, dim=32, n_queries=64, batch_size=64, k=10,
                   repeats=2, sim_processes=50, sim_timeouts=200)

    @classmethod
    def full(cls) -> "BenchConfig":
        """The committed-trajectory sizing."""
        return cls(n=20_000, dim=64, n_queries=256, batch_size=256, k=10,
                   repeats=5, sim_processes=200, sim_timeouts=500)

    def as_dict(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self)


def _make_data(config: BenchConfig,
               seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Clustered vectors + queries (clustered data keeps IVF honest)."""
    rng = np.random.default_rng(seed)
    n_centers = 32
    centers = rng.standard_normal((n_centers, config.dim),
                                  dtype=np.float32) * 4.0
    assign = rng.integers(n_centers, size=config.n)
    X = centers[assign] + rng.standard_normal(
        (config.n, config.dim), dtype=np.float32)
    queries = (centers[rng.integers(n_centers, size=config.n_queries)]
               + rng.standard_normal((config.n_queries, config.dim),
                                     dtype=np.float32))
    return X, queries


def _best_seconds(fn: t.Callable[[], None], repeats: int) -> float:
    """Best-of-*repeats* wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_index(name: str, index, X: np.ndarray, queries: np.ndarray,
                 config: BenchConfig,
                 params: dict[str, t.Any]) -> dict[str, t.Any]:
    start = time.perf_counter()
    index.build(X)
    build_s = time.perf_counter() - start

    def run_single() -> None:
        for query in queries:
            index.search(query, config.k, **params)

    def run_batch() -> None:
        for begin in range(0, len(queries), config.batch_size):
            index.search_batch(queries[begin:begin + config.batch_size],
                               config.k, **params)

    single_s = _best_seconds(run_single, config.repeats)
    batch_s = _best_seconds(run_batch, config.repeats)
    single_qps = len(queries) / single_s
    batch_qps = len(queries) / batch_s
    return {"name": name, "kind": index.kind,
            "build_s": build_s,
            "single_qps": single_qps,
            "batch_qps": batch_qps,
            "batch_speedup": batch_qps / single_qps,
            "search_params": params}


def _bench_sim(config: BenchConfig) -> dict[str, t.Any]:
    """Event-processing throughput of the discrete-event kernel."""
    env = Environment()

    def proc():
        for _ in range(config.sim_timeouts):
            yield env.timeout(0.001)

    for _ in range(config.sim_processes):
        env.process(proc())
    start = time.perf_counter()
    env.run()
    elapsed = max(time.perf_counter() - start, 1e-9)
    return {"events": env.events_processed,
            "elapsed_s": elapsed,
            "events_per_s": env.events_processed / elapsed}


def _bench_cluster(config: BenchConfig, seed: int) -> list[dict[str, t.Any]]:
    """Coordinator throughput and merge overhead vs shard count.

    One flat-index cluster per fan-out over the same clustered data
    (the corpus is re-sharded, not grown, so this is the aggregate
    scaling view): reports the *simulated* coordinator QPS, the
    wall-clock cost of replaying that run, and the scatter-gather
    merge overhead measured from the per-query ``merge`` stage.
    """
    from repro.cluster import Cluster, ClusterBenchRunner, ClusterTopology
    from repro.engines.engine import IndexSpec
    from repro.obs import RunTelemetry

    X, queries = _make_data(config, seed + 5)
    rows = []
    for n_shards in CLUSTER_FANOUTS:
        cluster = Cluster(ClusterTopology(n_shards=n_shards, seed=seed),
                          "milvus", seed=seed)
        cluster.create("bench", config.dim,
                       IndexSpec.of("flat", config.metric))
        cluster.insert("bench", X)
        cluster.flush("bench")
        runner = ClusterBenchRunner(cluster, "bench", queries,
                                    k=config.k)
        telemetry = RunTelemetry()
        start = time.perf_counter()
        result = runner.run(8, duration_s=0.2, telemetry=telemetry)
        wall_s = max(time.perf_counter() - start, 1e-9)
        merge_s = sum(span.stages.get("merge", 0.0)
                      for span in telemetry.spans)
        service_s = sum(span.latency_s for span in telemetry.spans)
        rows.append({
            "n_shards": n_shards,
            "coordinator_qps": result.qps,
            "p99_latency_s": result.p99_latency_s,
            "merge_overhead_fraction": merge_s / max(service_s, 1e-12),
            "wall_s": wall_s,
            "completed": result.completed,
        })
    return rows


def _bench_serve(config: BenchConfig, seed: int) -> dict[str, t.Any]:
    """Open-loop serve-path QPS and the wall-clock cost of replaying it.

    A flat-index collection served under Poisson load at ~70 % of its
    probed closed-loop capacity: the whole serving stack runs (arrival
    timeline, admission queue, batching, timing replay), so this is
    the end-to-end cost of one simulated serving second — the number
    the tenancy study's wall time is made of.
    """
    from repro.engines.engine import IndexSpec, VectorEngine
    from repro.serve import (PoissonArrivals, ServeConfig, Server,
                             TenantLoad)
    from repro.workload.runner import BenchRunner

    X, queries = _make_data(config, seed + 9)
    engine = VectorEngine("milvus")
    engine.create_collection("bench", config.dim,
                             IndexSpec.of("flat", config.metric))
    engine.insert("bench", X)
    engine.flush("bench")
    runner = BenchRunner(engine, "bench", queries, k=config.k)
    probe = runner.run(8, {}, duration_s=0.2)
    offered = 0.7 * probe.qps
    serve_config = ServeConfig(
        tenants=(TenantLoad("all", PoissonArrivals(rate_qps=offered)),),
        max_inflight=8, duration_s=0.2, seed=seed, search_params={})
    start = time.perf_counter()
    result = Server(runner, serve_config).serve()
    wall_s = max(time.perf_counter() - start, 1e-9)
    return {"offered_qps": result.offered_qps,
            "qps": result.qps,
            "goodput_qps": result.goodput_qps,
            "p99_latency_s": result.p99_latency_s,
            "completed": result.completed,
            "wall_s": wall_s}


def run_bench(quick: bool = False, seed: int = 0) -> dict[str, t.Any]:
    """Run the whole suite; returns the schema-versioned document."""
    config = BenchConfig.quick() if quick else BenchConfig.full()
    X, queries = _make_data(config, seed)
    cases = [
        ("flat", FlatIndex(metric=config.metric), {}),
        ("ivf", IVFIndex(metric=config.metric, seed=seed),
         {"nprobe": 8}),
        ("ivf-pq", IVFIndex(metric=config.metric, seed=seed,
                            quantizer=ProductQuantizer(
                                config.dim, m=config.dim // 4, seed=seed),
                            on_disk=True),
         {"nprobe": 8}),
    ]
    results = [_bench_index(name, index, X, queries, config, params)
               for name, index, params in cases]
    doc = {"schema_version": BENCH_SCHEMA_VERSION,
           "quick": quick,
           "seed": seed,
           "config": config.as_dict(),
           "results": results,
           "sim": _bench_sim(config),
           "cluster": _bench_cluster(config, seed),
           "serve": _bench_serve(config, seed)}
    validate_bench(doc)
    return doc


_RESULT_FIELDS = ("build_s", "single_qps", "batch_qps", "batch_speedup")
_SIM_FIELDS = ("events", "elapsed_s", "events_per_s")
_CLUSTER_FIELDS = ("n_shards", "coordinator_qps",
                   "merge_overhead_fraction", "wall_s")
_SERVE_FIELDS = ("offered_qps", "qps", "goodput_qps", "completed",
                 "wall_s")


def validate_bench(doc: dict[str, t.Any]) -> None:
    """Raise :class:`~repro.errors.ReproError` unless *doc* conforms
    to a supported BENCH schema version (see ``docs/BENCHMARKS.md``).

    Version 1 documents have no ``cluster`` section; version 2
    documents must carry one.  The ``serve`` section is optional in
    both (older committed documents predate it) but is validated
    whenever present.  Everything else is common.
    """
    if not isinstance(doc, dict):
        raise ReproError(f"bench document must be an object: {type(doc)}")
    version = doc.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ReproError(
            f"unsupported bench schema_version {version!r}"
            f" (supported: {SUPPORTED_SCHEMA_VERSIONS})")
    required = ("quick", "seed", "config", "results", "sim")
    if version >= 2:
        required += ("cluster",)
    for key in required:
        if key not in doc:
            raise ReproError(f"bench document missing {key!r}")
    if not isinstance(doc["results"], list) or not doc["results"]:
        raise ReproError("bench results must be a non-empty list")
    for result in doc["results"]:
        for key in ("name", "kind") + _RESULT_FIELDS:
            if key not in result:
                raise ReproError(
                    f"bench result {result.get('name')!r} missing {key!r}")
        for key in _RESULT_FIELDS:
            value = result[key]
            if not isinstance(value, (int, float)) or not value > 0:
                raise ReproError(
                    f"bench result {result['name']!r}: {key} must be a "
                    f"positive number, got {value!r}")
    sim = doc["sim"]
    for key in _SIM_FIELDS:
        if key not in sim:
            raise ReproError(f"bench sim section missing {key!r}")
        if not isinstance(sim[key], (int, float)) or not sim[key] > 0:
            raise ReproError(
                f"bench sim: {key} must be a positive number, "
                f"got {sim[key]!r}")
    if version >= 2:
        rows = doc["cluster"]
        if not isinstance(rows, list) or not rows:
            raise ReproError("bench cluster must be a non-empty list")
        for row in rows:
            for key in _CLUSTER_FIELDS:
                if key not in row:
                    raise ReproError(
                        f"bench cluster row missing {key!r}")
            if not isinstance(row["n_shards"], int) or row["n_shards"] < 1:
                raise ReproError(
                    f"bench cluster: n_shards must be a positive int, "
                    f"got {row['n_shards']!r}")
            for key in ("coordinator_qps", "wall_s"):
                value = row[key]
                if not isinstance(value, (int, float)) or not value > 0:
                    raise ReproError(
                        f"bench cluster n_shards={row['n_shards']}: {key} "
                        f"must be a positive number, got {value!r}")
            fraction = row["merge_overhead_fraction"]
            if (not isinstance(fraction, (int, float))
                    or not 0.0 <= fraction < 1.0):
                raise ReproError(
                    f"bench cluster n_shards={row['n_shards']}: "
                    f"merge_overhead_fraction must be in [0, 1), "
                    f"got {fraction!r}")
    if "serve" in doc:
        serve = doc["serve"]
        if not isinstance(serve, dict):
            raise ReproError("bench serve section must be an object")
        for key in _SERVE_FIELDS:
            if key not in serve:
                raise ReproError(f"bench serve section missing {key!r}")
            if not isinstance(serve[key], (int, float)) or not serve[key] > 0:
                raise ReproError(
                    f"bench serve: {key} must be a positive number, "
                    f"got {serve[key]!r}")


def write_bench(doc: dict[str, t.Any], path: str | Path) -> None:
    """Validate and write *doc* as pretty-printed JSON."""
    validate_bench(doc)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_bench(path: str | Path) -> dict[str, t.Any]:
    """Read and validate a BENCH_*.json document."""
    doc = json.loads(Path(path).read_text())
    validate_bench(doc)
    return doc


def format_bench(doc: dict[str, t.Any]) -> str:
    """Human-readable summary of a bench document."""
    lines = [f"bench (schema v{doc['schema_version']}, "
             f"{'quick' if doc['quick'] else 'full'}): "
             f"n={doc['config']['n']} dim={doc['config']['dim']} "
             f"queries={doc['config']['n_queries']} "
             f"batch={doc['config']['batch_size']}"]
    header = (f"{'index':<8} {'build(s)':>9} {'1-q QPS':>10} "
              f"{'batch QPS':>10} {'speedup':>8}")
    lines.append(header)
    for result in doc["results"]:
        lines.append(
            f"{result['name']:<8} {result['build_s']:>9.3f} "
            f"{result['single_qps']:>10.0f} {result['batch_qps']:>10.0f} "
            f"{result['batch_speedup']:>7.1f}x")
    sim = doc["sim"]
    lines.append(f"sim kernel: {sim['events']} events in "
                 f"{sim['elapsed_s']:.3f}s "
                 f"({sim['events_per_s']:,.0f} events/s)")
    for row in doc.get("cluster", ()):
        lines.append(
            f"cluster N={row['n_shards']}: "
            f"{row['coordinator_qps']:,.0f} coordinator QPS, "
            f"merge overhead {row['merge_overhead_fraction']:.2%}, "
            f"replayed in {row['wall_s']:.2f}s")
    if "serve" in doc:
        serve = doc["serve"]
        lines.append(
            f"serve path: {serve['qps']:,.0f} QPS at "
            f"{serve['offered_qps']:,.0f} offered "
            f"(goodput {serve['goodput_qps']:,.0f}), "
            f"replayed in {serve['wall_s']:.2f}s")
    return "\n".join(lines)
