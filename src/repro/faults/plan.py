"""Deterministic, seedable fault plans for the simulated device.

A :class:`FaultPlan` is a *schedule* of device misbehaviour laid out on
the run's simulated timeline: windows during which read requests suffer
latency spikes, tail amplification, transient errors, or bandwidth
throttling.  The plan is pure data — it never mutates — and every
probabilistic decision it makes is a deterministic function of
``(plan.seed, window position, request ordinal)``, so replaying the same
plan against the same request stream reproduces the *exact* same fault
timeline, byte for byte.  See ``docs/FAULT_MODEL.md`` for the full fault
model and its calibration rationale.

Fault windows model the device pathologies behind the paper's tail
behaviour:

* :class:`LatencySpike` — a garbage-collection / internal-housekeeping
  episode: every read completing in the window takes a fixed extra
  latency (the Figure 3 P99 cliffs, compressed into a window);
* :class:`TailAmplification` — per-request tail inflation: a sampled
  fraction of reads takes ``multiplier``x their media occupancy (NAND
  read retries, die contention);
* :class:`ReadError` — transient uncorrectable reads: a sampled read
  stalls for ``stall_s`` of device-internal recovery before completing
  (the host-visible symptom of an SSD ECC retry storm);
* :class:`Throttle` — thermal or background-write throttling: all reads
  in the window see their channel occupancy scaled by
  ``1 / bandwidth_fraction``, capping effective device bandwidth.

Example::

    >>> plan = FaultPlan.of(ReadError(0.5, 1.5, probability=0.5), seed=7)
    >>> plan.empty
    False
    >>> effects = plan.effects(now=1.0, ordinal=3)
    >>> [e.kind for e in effects] in ([], ["read_error"])
    True
    >>> plan.effects(now=1.0, ordinal=3) == effects   # deterministic
    True
    >>> plan.effects(now=2.0, ordinal=3)              # outside the window
    []
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkloadError

#: All fault kinds a plan can schedule (the ``kind`` of each effect).
FAULT_KINDS = ("latency_spike", "tail_amplification", "read_error",
               "throttle")


def _unit(seed: int, window: int, ordinal: int) -> float:
    """A deterministic unit float from (seed, window, ordinal).

    A splitmix64 finalizer over the packed inputs: stateless, so fault
    sampling never depends on Python hash randomization or on any RNG
    stream position — only on the plan seed and the request's identity.
    """
    x = (seed * 0x9E3779B97F4A7C15 + window * 0xBF58476D1CE4E5B9
         + ordinal + 1) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x / 2.0 ** 64


@dataclasses.dataclass(frozen=True)
class FaultEffect:
    """What one fault window does to one read request.

    Effects compose multiplicatively (occupancy) and additively (extra
    completion latency) when several windows overlap.
    """

    kind: str
    #: Channel-occupancy multiplier (>= 1.0): throttle, amplification.
    occupancy_multiplier: float = 1.0
    #: Extra seconds added to the request's completion: spikes, stalls.
    extra_s: float = 0.0


@dataclasses.dataclass(frozen=True)
class FaultWindow:
    """Base class: one timed window of device misbehaviour."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise WorkloadError(
                f"bad fault window [{self.start_s}, {self.end_s})")

    def active(self, now: float) -> bool:
        """Whether the window covers simulated time *now*."""
        return self.start_s <= now < self.end_s

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def effect(self, unit: float) -> FaultEffect | None:
        """The effect on a read given its sampling draw, or None."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class LatencySpike(FaultWindow):
    """Every read completing in the window takes ``extra_s`` longer."""

    extra_s: float = 0.001

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_s <= 0:
            raise WorkloadError(f"bad spike extra_s: {self.extra_s}")

    @property
    def kind(self) -> str:
        return "latency_spike"

    def effect(self, unit: float) -> FaultEffect | None:
        return FaultEffect(self.kind, extra_s=self.extra_s)


@dataclasses.dataclass(frozen=True)
class TailAmplification(FaultWindow):
    """A sampled fraction of reads takes ``multiplier``x its occupancy."""

    multiplier: float = 8.0
    probability: float = 0.05

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.multiplier < 1.0:
            raise WorkloadError(f"bad multiplier: {self.multiplier}")
        if not 0.0 < self.probability <= 1.0:
            raise WorkloadError(f"bad probability: {self.probability}")

    @property
    def kind(self) -> str:
        return "tail_amplification"

    def effect(self, unit: float) -> FaultEffect | None:
        if unit < self.probability:
            return FaultEffect(self.kind,
                               occupancy_multiplier=self.multiplier)
        return None


@dataclasses.dataclass(frozen=True)
class ReadError(FaultWindow):
    """A sampled read stalls ``stall_s`` in device-internal recovery.

    The device eventually returns the data (transient fault), but the
    host sees a read that takes tens of milliseconds instead of tens of
    microseconds — exactly the case host-level timeouts + retries beat,
    because a resubmitted read re-samples the fault and almost always
    lands on a healthy path.
    """

    probability: float = 0.01
    stall_s: float = 0.025

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise WorkloadError(f"bad probability: {self.probability}")
        if self.stall_s <= 0:
            raise WorkloadError(f"bad stall_s: {self.stall_s}")

    @property
    def kind(self) -> str:
        return "read_error"

    def effect(self, unit: float) -> FaultEffect | None:
        if unit < self.probability:
            return FaultEffect(self.kind, extra_s=self.stall_s)
        return None


@dataclasses.dataclass(frozen=True)
class Throttle(FaultWindow):
    """Device bandwidth capped to ``bandwidth_fraction`` of nominal."""

    bandwidth_fraction: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.bandwidth_fraction <= 1.0:
            raise WorkloadError(
                f"bad bandwidth_fraction: {self.bandwidth_fraction}")

    @property
    def kind(self) -> str:
        return "throttle"

    def effect(self, unit: float) -> FaultEffect | None:
        return FaultEffect(
            self.kind, occupancy_multiplier=1.0 / self.bandwidth_fraction)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seedable schedule of fault windows on the run timeline.

    The plan is replayed from ``seed``: every sampling decision is a
    pure function of (seed, window position, read ordinal), so two runs
    with the same plan and the same request stream inject the *same*
    faults at the same requests.  An empty plan (no windows) is
    guaranteed to leave the simulation bit-identical to running with no
    plan at all — the regression tests assert it.
    """

    windows: tuple[FaultWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", tuple(self.windows))
        for window in self.windows:
            if not isinstance(window, FaultWindow):
                raise WorkloadError(
                    f"fault plan holds a non-window: {window!r}")

    @classmethod
    def of(cls, *windows: FaultWindow, seed: int = 0) -> "FaultPlan":
        """Build a plan from windows given positionally."""
        return cls(tuple(windows), seed)

    @property
    def empty(self) -> bool:
        """True when the plan schedules no fault windows."""
        return not self.windows

    @property
    def end_s(self) -> float:
        """When the last window closes (0.0 for an empty plan)."""
        return max((w.end_s for w in self.windows), default=0.0)

    def effects(self, now: float, ordinal: int) -> list[FaultEffect]:
        """All fault effects hitting read *ordinal* at time *now*.

        Deterministic: same (plan, now, ordinal) always returns the
        same effects, in window order.
        """
        out = []
        for position, window in enumerate(self.windows):
            if window.active(now):
                effect = window.effect(
                    _unit(self.seed, position, ordinal))
                if effect is not None:
                    out.append(effect)
        return out

    def describe(self) -> list[dict[str, t.Any]]:
        """The plan as plain dicts (reports, serialization)."""
        return [dict(kind=w.kind, **dataclasses.asdict(w))
                for w in self.windows]
