"""Gray failures: persistently slow-but-alive nodes.

A gray-failed node is the nastiest case for failure detection: it
answers health probes *eventually*, never trips the dead-node check,
and yet drags every query routed through it into the latency tail.
:class:`GrayFailure` models that as a long-lived slowdown window on one
node — while active, every network hop touching the node is stretched
by ``slowdown``x, and the chaos layer additionally compiles the window
into a device :class:`~repro.faults.plan.Throttle` so the node's SSD
slows down in sympathy (the usual root cause: a dying disk or a
thermally-throttled device behind a healthy-looking process).

The plan is pure data; :meth:`GrayPlan.slowdown` is a pure function of
(node, now), so the same plan always slows the same hops by the same
factor.  An empty plan reports 1.0 everywhere and is guaranteed
passive.

Example::

    >>> plan = GrayPlan.of(GrayFailure(2, 0.0, 1.0, slowdown=8.0))
    >>> plan.slowdown(2, 0.5)
    8.0
    >>> plan.slowdown(2, 1.5)      # window closed: back to healthy
    1.0
    >>> plan.slowdown(0, 0.5)      # other nodes unaffected
    1.0
    >>> GrayPlan().empty
    True
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkloadError
from repro.faults.plan import FaultPlan, Throttle, _unit


@dataclasses.dataclass(frozen=True)
class GrayFailure:
    """One node running ``slowdown``x slow between start_s and end_s."""

    node: int
    start_s: float
    end_s: float
    slowdown: float = 8.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise WorkloadError(f"bad gray-failure node: {self.node}")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise WorkloadError(
                f"bad gray window [{self.start_s}, {self.end_s})")
        if self.slowdown <= 1.0:
            raise WorkloadError(
                f"gray slowdown must exceed 1.0: {self.slowdown}")

    def active(self, now: float) -> bool:
        """Whether the window covers simulated time *now*."""
        return self.start_s <= now < self.end_s


@dataclasses.dataclass(frozen=True)
class GrayPlan:
    """A seedable schedule of gray failures on the run timeline."""

    grays: tuple[GrayFailure, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "grays", tuple(self.grays))
        for gray in self.grays:
            if not isinstance(gray, GrayFailure):
                raise WorkloadError(
                    f"gray plan holds a non-gray-failure: {gray!r}")

    @classmethod
    def of(cls, *grays: GrayFailure, seed: int = 0) -> "GrayPlan":
        """Build a plan from gray failures given positionally."""
        return cls(tuple(grays), seed)

    @classmethod
    def seeded(cls, n_nodes: int, duration_s: float, *,
               grays: int = 1, outage_s: float = 0.1,
               slowdown: float = 8.0, seed: int = 0) -> "GrayPlan":
        """Sample *grays* slowdown windows from the seed."""
        if n_nodes <= 0 or duration_s <= 0 or outage_s <= 0:
            raise WorkloadError("bad seeded-gray parameters")
        span = max(duration_s - outage_s, 1e-9)
        out = []
        for i in range(grays):
            victim = int(_unit(seed, 4, i) * n_nodes) % n_nodes
            start = _unit(seed, 5, i) * span
            out.append(GrayFailure(victim, start, start + outage_s,
                                   slowdown=slowdown))
        return cls(tuple(out), seed)

    @property
    def empty(self) -> bool:
        """True when the plan schedules no gray failures."""
        return not self.grays

    @property
    def end_s(self) -> float:
        """When the last window closes (0.0 for an empty plan)."""
        return max((g.end_s for g in self.grays), default=0.0)

    def slowdown(self, node: int, now: float) -> float:
        """The node's slowdown factor at time *now* (1.0 = healthy)."""
        return max((g.slowdown for g in self.grays
                    if g.node == node and g.active(now)), default=1.0)

    def device_plan(self, node: int, *, seed: int = 0) -> FaultPlan:
        """The node's gray windows compiled to device throttles.

        The SSD-side half of a gray failure: each window becomes a
        :class:`~repro.faults.plan.Throttle` capping the node's device
        bandwidth to ``1/slowdown`` of nominal for the same interval.
        Returns an empty (passive) plan for healthy nodes.
        """
        windows = tuple(
            Throttle(g.start_s, g.end_s,
                     bandwidth_fraction=1.0 / g.slowdown)
            for g in self.grays if g.node == node)
        return FaultPlan(windows, seed)

    def describe(self) -> list[dict[str, t.Any]]:
        """The plan as plain dicts (reports, serialization)."""
        return [dataclasses.asdict(g) for g in self.grays]
