"""The injection point: attaching a fault plan to the simulated device.

A :class:`FaultInjector` sits between :class:`~repro.storage.device.SimSSD`
and a :class:`~repro.faults.plan.FaultPlan`.  The device consults it once
per *read* request at submission time; the injector resolves the plan's
active windows into a composed :class:`~repro.faults.plan.FaultEffect`,
counts what it injected (per kind and per window) for later
reconciliation, and hands the effect back for the device to apply to
that request's timing.  Writes are never faulted — the paper's failure
surface, and this repo's resilience machinery, is the read path.

The injector is the *only* stateful piece of fault injection, and its
state is just the read ordinal counter plus attribution counters; the
sampling itself lives in the plan and is a pure function of
(seed, window, ordinal).
"""

from __future__ import annotations

import collections
import typing as t

from repro.faults.plan import FaultEffect, FaultPlan


class FaultInjector:
    """Resolves a fault plan against the device's read stream.

    >>> from repro.faults.plan import FaultPlan, LatencySpike
    >>> injector = FaultInjector(FaultPlan.of(LatencySpike(0.0, 1.0)))
    >>> injector.on_read(now=0.5, offset=0, size=4096).kind
    'latency_spike'
    >>> injector.on_read(now=2.0, offset=0, size=4096) is None
    True
    >>> injector.summary()
    {'latency_spike': 1, 'reads_sampled': 2}
    """

    def __init__(self, plan: FaultPlan,
                 telemetry: t.Any = None) -> None:
        """``telemetry`` is an optional
        :class:`~repro.obs.telemetry.RunTelemetry`; every injected fault
        is counted there under ``fault_injected_<kind>``."""
        self.plan = plan
        self.telemetry = telemetry
        #: Read requests seen so far — the deterministic sampling key.
        self.ordinal = 0
        #: Injected fault counts by kind.
        self.injected: collections.Counter[str] = collections.Counter()

    def on_read(self, now: float, offset: int,
                size: int) -> FaultEffect | None:
        """The composed fault effect for the next read, or None.

        Called by the device once per read request, in submission order;
        advances the ordinal whether or not a fault fires, so the
        request stream alone determines the fault timeline.
        """
        ordinal = self.ordinal
        self.ordinal += 1
        effects = self.plan.effects(now, ordinal)
        if not effects:
            return None
        multiplier, extra = 1.0, 0.0
        kinds = []
        for effect in effects:
            multiplier *= effect.occupancy_multiplier
            extra += effect.extra_s
            kinds.append(effect.kind)
            self.injected[effect.kind] += 1
            if self.telemetry is not None:
                self.telemetry.on_fault(effect.kind)
        return FaultEffect("+".join(kinds), occupancy_multiplier=multiplier,
                           extra_s=extra)

    def summary(self) -> dict[str, int]:
        """Injected fault counts by kind (plus the total reads seen)."""
        out: dict[str, int] = dict(sorted(self.injected.items()))
        out["reads_sampled"] = self.ordinal
        return out
