"""Network partitions: seeded per-hop message drops between node groups.

A :class:`PartitionWindow` isolates a *group* of nodes from the rest of
the cluster for a timed window: every message crossing the group
boundary — in either direction, coordinator hops included — is dropped
with ``drop_fraction`` probability.  Messages *inside* the group (or
entirely outside it) are untouched, which is what makes this a
partition rather than a node kill: the isolated nodes stay alive,
keep serving anything that reaches them, and rejoin silently when the
window closes.

Like every fault plane in :mod:`repro.faults`, the plan is pure data
and every drop decision is a deterministic function of
``(seed, hop lane, message ordinal)`` via the shared splitmix64 unit
sampler, so replaying the same plan against the same message stream
drops the *same* messages.  An empty plan is guaranteed passive: it
never draws, so a run with ``PartitionPlan()`` is bit-identical to a
run with no plan at all.

Example::

    >>> plan = PartitionPlan.of(PartitionWindow((1,), 0.0, 1.0))
    >>> plan.dropped(src=0, dst=1, now=0.5, ordinal=0)   # crosses cut
    True
    >>> plan.dropped(src=0, dst=2, now=0.5, ordinal=0)   # outside group
    False
    >>> plan.dropped(src=0, dst=1, now=2.0, ordinal=0)   # window closed
    False
    >>> PartitionPlan().dropped(0, 1, 0.5, 0)            # empty = passive
    False
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkloadError
from repro.faults.plan import _unit


@dataclasses.dataclass(frozen=True)
class PartitionWindow:
    """One timed partition: ``nodes`` cut off from everyone else.

    ``drop_fraction`` is the probability that a boundary-crossing
    message is dropped (1.0 = a clean partition; lower values model a
    flaky link that loses some packets but not all).
    """

    nodes: tuple[int, ...]
    start_s: float
    end_s: float
    drop_fraction: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise WorkloadError("partition window isolates no nodes")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise WorkloadError(
                f"bad partition window [{self.start_s}, {self.end_s})")
        if not 0.0 < self.drop_fraction <= 1.0:
            raise WorkloadError(
                f"bad drop_fraction: {self.drop_fraction}")

    def active(self, now: float) -> bool:
        """Whether the window covers simulated time *now*."""
        return self.start_s <= now < self.end_s

    def severs(self, src: int, dst: int) -> bool:
        """Whether a src->dst message crosses this partition's cut."""
        return (src in self.nodes) != (dst in self.nodes)


@dataclasses.dataclass(frozen=True)
class PartitionPlan:
    """A seedable schedule of network partitions on the run timeline.

    The replay layer asks :meth:`dropped` once per cross-node message,
    passing the network's message ordinal; the answer is a pure
    function of (seed, hop lane, ordinal), so a given request stream
    always loses the same messages.
    """

    windows: tuple[PartitionWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", tuple(self.windows))
        for window in self.windows:
            if not isinstance(window, PartitionWindow):
                raise WorkloadError(
                    f"partition plan holds a non-window: {window!r}")

    @classmethod
    def of(cls, *windows: PartitionWindow,
           seed: int = 0) -> "PartitionPlan":
        """Build a plan from windows given positionally."""
        return cls(tuple(windows), seed)

    @classmethod
    def seeded(cls, n_nodes: int, duration_s: float, *,
               partitions: int = 1, outage_s: float = 0.05,
               seed: int = 0) -> "PartitionPlan":
        """Sample *partitions* single-node isolation windows.

        Victims and window starts are drawn from the seed exactly like
        :meth:`repro.faults.nodes.NodeFaultPlan.seeded` draws kills, so
        a seeded chaos schedule is reproducible end to end.
        """
        if n_nodes <= 0 or duration_s <= 0 or outage_s <= 0:
            raise WorkloadError("bad seeded-partition parameters")
        span = max(duration_s - outage_s, 1e-9)
        windows = []
        for i in range(partitions):
            victim = int(_unit(seed, 2, i) * n_nodes) % n_nodes
            start = _unit(seed, 3, i) * span
            windows.append(PartitionWindow((victim,), start,
                                           start + outage_s))
        return cls(tuple(windows), seed)

    @property
    def empty(self) -> bool:
        """True when the plan schedules no partition windows."""
        return not self.windows

    @property
    def end_s(self) -> float:
        """When the last window closes (0.0 for an empty plan)."""
        return max((w.end_s for w in self.windows), default=0.0)

    def drop_fraction(self, src: int, dst: int, now: float) -> float:
        """Max loss probability on the src->dst hop at time *now*."""
        if src == dst:
            return 0.0
        return max((w.drop_fraction for w in self.windows
                    if w.active(now) and w.severs(src, dst)),
                   default=0.0)

    def dropped(self, src: int, dst: int, now: float,
                ordinal: int) -> bool:
        """Whether message *ordinal* on the src->dst hop is dropped.

        Deterministic: the draw key is (seed, hop lane, ordinal) with
        the same hop-lane packing the network uses for jitter, so the
        loss pattern is stable under replay.
        """
        fraction = self.drop_fraction(src, dst, now)
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        return _unit(self.seed, src * 0x10001 + dst, ordinal) < fraction

    def describe(self) -> list[dict[str, t.Any]]:
        """The plan as plain dicts (reports, serialization)."""
        return [dataclasses.asdict(w) for w in self.windows]
