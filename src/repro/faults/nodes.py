"""Node-kill fault windows for the distributed cluster layer.

:class:`repro.faults.FaultPlan` misbehaves a *device*; this module kills
whole *nodes*.  A :class:`NodeKill` window marks one node as dead over an
interval of the simulated timeline: requests routed to it while dead are
never answered, and requests in flight when the window opens are
abandoned mid-query — which is exactly what drives replica failover in
:mod:`repro.cluster`.  Like every fault schedule in this package the
plan is pure data, so same-seed runs replay the identical kill timeline.

Example::

    >>> plan = NodeFaultPlan.of(NodeKill(node=1, start_s=0.5, end_s=2.0))
    >>> plan.dead(node=1, now=1.0)
    True
    >>> plan.dead(node=0, now=1.0)
    False
    >>> plan.next_death_after(node=1, now=0.1)
    0.5
    >>> plan.next_death_after(node=1, now=3.0) is None
    True
    >>> seeded = NodeFaultPlan.seeded(n_nodes=4, duration_s=2.0,
    ...                               kills=2, outage_s=0.4, seed=9)
    >>> seeded == NodeFaultPlan.seeded(n_nodes=4, duration_s=2.0,
    ...                                kills=2, outage_s=0.4, seed=9)
    True
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkloadError
from repro.faults.plan import _unit


@dataclasses.dataclass(frozen=True)
class NodeKill:
    """One node is dead during ``[start_s, end_s)``.

    Death is total: the node answers nothing while the window is open,
    and work in flight on it when the window opens is lost.  The node
    comes back at ``end_s`` with its data intact (replicas are identical
    by construction, so recovery needs no catch-up in this model).
    """

    node: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise WorkloadError(f"bad node id: {self.node}")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise WorkloadError(
                f"bad kill window [{self.start_s}, {self.end_s})")

    def active(self, now: float) -> bool:
        """Whether the node is dead at simulated time *now*."""
        return self.start_s <= now < self.end_s


@dataclasses.dataclass(frozen=True)
class NodeFaultPlan:
    """A deterministic schedule of node deaths on the run timeline.

    Pure data, replayed from construction: the same plan against the
    same query stream kills the same nodes at the same instants.  An
    empty plan leaves the cluster simulation bit-identical to running
    with no plan at all.
    """

    kills: tuple[NodeKill, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(self.kills))
        for kill in self.kills:
            if not isinstance(kill, NodeKill):
                raise WorkloadError(
                    f"node fault plan holds a non-kill: {kill!r}")

    @classmethod
    def of(cls, *kills: NodeKill, seed: int = 0) -> "NodeFaultPlan":
        """Build a plan from kill windows given positionally."""
        return cls(tuple(kills), seed)

    @classmethod
    def seeded(cls, n_nodes: int, duration_s: float, kills: int,
               outage_s: float, seed: int = 0) -> "NodeFaultPlan":
        """Sample *kills* outage windows deterministically from *seed*.

        Each kill picks a victim node and a start time with the same
        stateless splitmix64 draw the device fault plans use, so the
        schedule is a pure function of the arguments.
        """
        if n_nodes <= 0 or kills < 0 or outage_s <= 0 or duration_s <= 0:
            raise WorkloadError(
                f"bad seeded kill spec: n_nodes={n_nodes} kills={kills} "
                f"outage_s={outage_s} duration_s={duration_s}")
        span = max(duration_s - outage_s, 0.0)
        windows = []
        for i in range(kills):
            node = int(_unit(seed, 0, i) * n_nodes) % n_nodes
            start = _unit(seed, 1, i) * span
            windows.append(NodeKill(node, start, start + outage_s))
        return cls(tuple(windows), seed)

    @property
    def empty(self) -> bool:
        """True when the plan schedules no kills."""
        return not self.kills

    @property
    def end_s(self) -> float:
        """When the last kill window closes (0.0 for an empty plan)."""
        return max((k.end_s for k in self.kills), default=0.0)

    def dead(self, node: int, now: float) -> bool:
        """Whether *node* is dead at simulated time *now*."""
        return any(k.node == node and k.active(now) for k in self.kills)

    def next_death_after(self, node: int, now: float) -> float | None:
        """Start of the next kill window for *node* strictly after *now*.

        The failover race arms a death timer with this: a request sent
        to a live node at *now* is abandoned if the node dies before the
        request completes.  Returns None when the node never dies again.
        """
        starts = [k.start_s for k in self.kills
                  if k.node == node and k.start_s > now]
        return min(starts, default=None)

    def describe(self) -> list[dict[str, t.Any]]:
        """The plan as plain dicts (reports, serialization)."""
        return [dataclasses.asdict(k) for k in self.kills]
