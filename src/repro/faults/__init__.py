"""Fault injection and resilience for the simulated storage stack.

The paper characterizes storage-based ANNS on a *healthy* SSD; this
package asks what happens when the device misbehaves — and what the
host can do about it.  Three pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a deterministic,
  seedable schedule of fault windows (latency spikes, tail
  amplification, transient read errors, bandwidth throttling);
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the device-side
  injection point, with per-kind attribution counters;
* :mod:`repro.faults.resilience` — :class:`ResiliencePolicy`: timeouts
  with exponential-backoff-and-jitter retries, hedged reads, and
  graceful search-parameter degradation.

Both halves plug into :meth:`repro.workload.runner.BenchRunner.run`
(``fault_plan=`` / ``resilience=``); ``repro faults`` runs the study
comparing P99/recall with and without the defences under one plan.
The architecture and the full fault model are documented in
``docs/ARCHITECTURE.md`` and ``docs/FAULT_MODEL.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (FAULT_KINDS, FaultEffect, FaultPlan,
                               FaultWindow, LatencySpike, ReadError,
                               TailAmplification, Throttle)
from repro.faults.resilience import (PressureTracker, ResiliencePolicy,
                                     degraded_search_params)

__all__ = [
    "FAULT_KINDS",
    "FaultEffect",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
    "LatencySpike",
    "PressureTracker",
    "ReadError",
    "ResiliencePolicy",
    "TailAmplification",
    "Throttle",
    "degraded_search_params",
]
