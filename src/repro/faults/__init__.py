"""Fault injection and resilience for the simulated storage stack.

The paper characterizes storage-based ANNS on a *healthy* SSD; this
package asks what happens when the device misbehaves — and what the
host can do about it.  Three pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a deterministic,
  seedable schedule of fault windows (latency spikes, tail
  amplification, transient read errors, bandwidth throttling);
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the device-side
  injection point, with per-kind attribution counters;
* :mod:`repro.faults.resilience` — :class:`ResiliencePolicy`: timeouts
  with exponential-backoff-and-jitter retries, hedged reads, and
  graceful search-parameter degradation;
* :mod:`repro.faults.nodes` — :class:`NodeFaultPlan`: seeded node-kill
  windows that take whole cluster nodes down mid-query, driving the
  replica failover in :mod:`repro.cluster`;
* :mod:`repro.faults.partition` — :class:`PartitionPlan`: seeded
  network partitions dropping messages that cross a node-group cut
  (the scatter-gather hops in :mod:`repro.cluster.runner` consult it);
* :mod:`repro.faults.gray` — :class:`GrayPlan`: gray failures — nodes
  that stay alive but run persistently slow, stretching their network
  hops and (via a compiled device throttle) their SSD;
* :mod:`repro.faults.crash` — the *write-path* attacks:
  :class:`CrashPlan`/:class:`CrashInjector` kill a durable save or WAL
  append at a declared crash point (optionally tearing the in-flight
  file), and :class:`CorruptionPlan` flips seeded bytes in a committed
  store for ``scrub()`` to find (see :mod:`repro.durability`).

The read-path halves plug into
:meth:`repro.workload.runner.BenchRunner.run` (``fault_plan=`` /
``resilience=``); ``repro faults`` runs the study comparing P99/recall
with and without the defences under one plan, and ``repro recover``
runs the crash x corruption recovery matrix.  The architecture and the
full fault model are documented in ``docs/ARCHITECTURE.md``,
``docs/FAULT_MODEL.md``, and ``docs/DURABILITY.md``.
"""

from repro.faults.crash import (Corruption, CorruptionPlan, CrashInjector,
                                CrashPlan)
from repro.faults.gray import GrayFailure, GrayPlan
from repro.faults.injector import FaultInjector
from repro.faults.nodes import NodeFaultPlan, NodeKill
from repro.faults.partition import PartitionPlan, PartitionWindow
from repro.faults.plan import (FAULT_KINDS, FaultEffect, FaultPlan,
                               FaultWindow, LatencySpike, ReadError,
                               TailAmplification, Throttle)
from repro.faults.resilience import (PressureTracker, ResiliencePolicy,
                                     degraded_search_params)

__all__ = [
    "FAULT_KINDS",
    "Corruption",
    "CorruptionPlan",
    "CrashInjector",
    "CrashPlan",
    "FaultEffect",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
    "GrayFailure",
    "GrayPlan",
    "LatencySpike",
    "NodeFaultPlan",
    "NodeKill",
    "PartitionPlan",
    "PartitionWindow",
    "PressureTracker",
    "ReadError",
    "ResiliencePolicy",
    "TailAmplification",
    "Throttle",
    "degraded_search_params",
]
