"""Resilience policy: surviving device misbehaviour on the read path.

A :class:`ResiliencePolicy` configures the three host-side defences the
benchmark runner can deploy against an injected (or, in a real
deployment, naturally occurring) fault timeline:

* **timeout + retry** — each demand read round races a deadline; on
  timeout the round is resubmitted after exponential backoff with
  deterministic jitter, re-sampling the fault (a transient stall almost
  never hits the retry too).  After ``max_retries`` resubmissions the
  round fails with :class:`~repro.errors.FaultError`.  An optional
  ``query_deadline_s`` makes the loop deadline-aware: a retry whose
  backoff alone pushes it past the query's deadline is abandoned
  immediately (``deadline_abandons``) instead of burning time on an
  already-missed deadline;
* **hedged reads** — after ``hedge_after_s`` (typically the healthy
  device's P99 round time) a duplicate of the round is submitted and
  the first completion wins, cutting per-request tail amplification;
* **graceful degradation** — under sustained pressure (consecutive
  queries over ``latency_budget_s``) subsequent queries replay a plan
  compiled with shrunken search parameters (DiskANN ``beam_width`` /
  ``search_list``, SPANN ``nprobe``), trading a little recall for a
  bounded tail; pressure release restores the full parameters.  The run
  result reports the substituted parameters and the degraded-query
  ratio as a :class:`~repro.errors.DegradedResult`.

All knobs are optional and default off; a default-constructed policy is
inert.  Example::

    >>> policy = ResiliencePolicy(read_timeout_s=0.002, max_retries=3)
    >>> policy.active
    True
    >>> policy.backoff_s(attempt=1, token=0) <= policy.backoff_cap_s
    True
    >>> ResiliencePolicy().active
    False
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkloadError
from repro.faults.plan import _unit


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Host-side defences applied on the replayed read path."""

    #: Deadline for one demand read round; None disables timeouts.
    read_timeout_s: float | None = None
    #: Resubmissions after timeout before the round fails.
    max_retries: int = 3
    #: First backoff delay; doubles per retry up to ``backoff_cap_s``.
    backoff_base_s: float = 0.0005
    backoff_cap_s: float = 0.008
    #: Fraction of each backoff randomized (deterministically, from
    #: ``seed``) to decorrelate retry storms across clients.
    backoff_jitter: float = 0.5
    #: Submit a duplicate round after this delay; None disables hedging.
    hedge_after_s: float | None = None
    #: Whole-query completion deadline; retries that provably cannot
    #: finish before it are abandoned instead of scheduled (counted as
    #: ``deadline_abandons``).  None disables the check.
    query_deadline_s: float | None = None
    #: Enable parameter degradation under sustained pressure.
    degrade: bool = False
    #: Per-query latency above which a completion counts as pressure.
    latency_budget_s: float | None = None
    #: Consecutive over-budget completions that trigger degraded mode.
    degrade_after: int = 4
    #: Consecutive within-budget completions that restore full params.
    recover_after: int = 16
    #: Explicit degraded search params; None derives them by shrinking
    #: the run's params with ``degrade_factor`` (see the index kinds'
    #: ``degrade_search_params``).
    degrade_params: dict[str, t.Any] | None = None
    degrade_factor: float = 0.5
    #: Jitter seed (composed with attempt ordinals).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.read_timeout_s is not None and self.read_timeout_s <= 0:
            raise WorkloadError(
                f"read_timeout_s must be positive: {self.read_timeout_s}")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise WorkloadError(
                f"hedge_after_s must be positive: {self.hedge_after_s}")
        if self.query_deadline_s is not None and self.query_deadline_s <= 0:
            raise WorkloadError(
                f"query_deadline_s must be positive: "
                f"{self.query_deadline_s}")
        if self.max_retries < 0:
            raise WorkloadError(f"max_retries < 0: {self.max_retries}")
        if (self.backoff_base_s < 0 or self.backoff_cap_s < 0
                or not 0.0 <= self.backoff_jitter <= 1.0):
            raise WorkloadError(f"bad backoff config: {self}")
        if self.degrade:
            if self.latency_budget_s is None or self.latency_budget_s <= 0:
                raise WorkloadError(
                    "degrade=True needs a positive latency_budget_s")
            if self.degrade_after < 1 or self.recover_after < 1:
                raise WorkloadError(f"bad degrade thresholds: {self}")
            if not 0.0 < self.degrade_factor < 1.0:
                raise WorkloadError(
                    f"degrade_factor must be in (0, 1): "
                    f"{self.degrade_factor}")

    @property
    def active(self) -> bool:
        """Whether any defence is switched on."""
        return (self.read_timeout_s is not None
                or self.hedge_after_s is not None
                or self.query_deadline_s is not None or self.degrade)

    def backoff_s(self, attempt: int, token: int) -> float:
        """Backoff before resubmission *attempt* (1-based).

        Exponential with cap, plus deterministic jitter derived from
        (seed, token): ``token`` is any per-retry unique integer (the
        runner uses a global retry ordinal), so two clients backing off
        at the same instant desynchronize.
        """
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** max(0, attempt - 1)))
        if self.backoff_jitter == 0.0:
            return base
        draw = _unit(self.seed, 0xBACC0FF, token)
        return base * (1.0 - self.backoff_jitter / 2.0
                       + self.backoff_jitter * draw)


class PressureTracker:
    """Hysteresis state machine driving graceful degradation.

    Fed one call per completed (or failed) query, it decides whether the
    *next* queries should replay the degraded plan.  Entry and exit are
    both debounced: ``degrade_after`` consecutive over-budget
    completions (a failed query always counts as over budget) switch
    degradation on, ``recover_after`` consecutive within-budget
    completions switch it back off — so a single latency blip neither
    engages nor releases the defence.

    >>> policy = ResiliencePolicy(degrade=True, latency_budget_s=0.01,
    ...                           degrade_after=2, recover_after=2)
    >>> tracker = PressureTracker(policy)
    >>> for _ in range(2):
    ...     tracker.on_completion(0.05)
    >>> tracker.degraded
    True
    >>> for _ in range(2):
    ...     tracker.on_completion(0.001)
    >>> tracker.degraded
    False
    """

    def __init__(self, policy: ResiliencePolicy) -> None:
        if not policy.degrade:
            raise WorkloadError(
                "PressureTracker needs a policy with degrade=True")
        self.policy = policy
        #: Whether queries should currently replay the degraded plan.
        self.degraded = False
        #: Mode switches over the run (entering or leaving degradation).
        self.transitions = 0
        self._over = 0
        self._under = 0

    def on_completion(self, latency_s: float,
                      failed: bool = False) -> None:
        """Fold one finished query into the pressure estimate."""
        policy = self.policy
        if failed or latency_s > policy.latency_budget_s:
            self._over += 1
            self._under = 0
            if not self.degraded and self._over >= policy.degrade_after:
                self.degraded = True
                self.transitions += 1
                self._over = 0
        else:
            self._under += 1
            self._over = 0
            if self.degraded and self._under >= policy.recover_after:
                self.degraded = False
                self.transitions += 1
                self._under = 0


def degraded_search_params(index_kind: str, params: dict[str, t.Any],
                           factor: float, k: int) -> dict[str, t.Any]:
    """The shrunken search-parameter set for one index kind.

    DiskANN and SPANN define their own shrink rules (see
    ``DiskANNIndex.degrade_search_params`` /
    ``SPANNIndex.degrade_search_params``); other kinds fall back to
    scaling the well-known breadth knobs (``ef_search``, ``nprobe``)
    with sane floors.  Unknown knobs pass through untouched, so
    cache/prefetch settings survive degradation.
    """
    if index_kind == "diskann":
        from repro.ann.diskann import DiskANNIndex
        return DiskANNIndex.degrade_search_params(params, factor, k)
    if index_kind == "spann":
        from repro.ann.spann import SPANNIndex
        return SPANNIndex.degrade_search_params(params, factor, k)
    out = dict(params)
    if "ef_search" in out:
        out["ef_search"] = max(k, int(out["ef_search"] * factor))
    if "nprobe" in out:
        out["nprobe"] = max(1, int(out["nprobe"] * factor))
    return out
