"""Write-path fault injection: crash plans and corruption plans.

PR 3 made the *read* path resilient to injected device faults; this
module attacks the *write/persist* path.  Two plans, both pure data and
fully deterministic under their seed, mirror the
:class:`~repro.faults.plan.FaultPlan` /
:class:`~repro.faults.injector.FaultInjector` split:

* :class:`CrashPlan` + :class:`CrashInjector` — "kill" the process at a
  declared crash point inside :mod:`repro.durability` (mid data write,
  before the manifest rename, during post-commit cleanup, mid WAL
  append).  The kill is an :class:`~repro.errors.InjectedCrash`
  exception: everything already written and renamed survives on disk,
  everything after the point never happens.  ``torn_fraction`` makes
  the crash *torn*: the file being written at the point is left holding
  a prefix of its intended bytes — the torn-tail case WAL recovery must
  truncate.
* :class:`CorruptionPlan` — silent bit rot: flip bytes at seeded
  (file, offset) positions in a committed store.  Every byte of the
  durable format is covered by a frame (magic, length, CRC32C), so
  ``scrub()`` must attribute 100% of these flips.

Example::

    >>> plan = CrashPlan.of("save.manifest.rename")
    >>> injector = CrashInjector(plan)
    >>> injector.reached("save.data.write")   # not the declared point
    >>> try:
    ...     injector.reached("save.manifest.rename")
    ... except InjectedCrash as crash:
    ...     crash.point
    'save.manifest.rename'
    >>> injector.fired
    True
"""

from __future__ import annotations

import collections
import dataclasses
import typing as t
from pathlib import Path

from repro.errors import InjectedCrash, WorkloadError
from repro.faults.plan import _unit


@dataclasses.dataclass(frozen=True)
class CrashPlan:
    """Where (and on which occurrence) to kill a durability operation.

    ``point`` names a declared crash point — see
    :data:`repro.durability.CRASH_POINTS` for the full registry — and
    ``occurrence`` selects which visit to it fires (a save passes
    ``save.data.write`` once per data file).  ``torn_fraction``, if
    set, leaves that fraction of the in-flight file's bytes on disk
    before the kill, modelling a torn write.
    """

    point: str
    occurrence: int = 0
    torn_fraction: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.point:
            raise WorkloadError("crash plan needs a point name")
        if self.occurrence < 0:
            raise WorkloadError(f"bad occurrence: {self.occurrence}")
        if self.torn_fraction is not None and not (
                0.0 <= self.torn_fraction < 1.0):
            raise WorkloadError(
                f"torn_fraction must be in [0, 1): {self.torn_fraction}")

    @classmethod
    def of(cls, point: str, occurrence: int = 0,
           torn_fraction: float | None = None, seed: int = 0) -> "CrashPlan":
        return cls(point, occurrence, torn_fraction, seed)

    @classmethod
    def choose(cls, points: t.Sequence[str], seed: int = 0,
               torn_fraction: float | None = None) -> "CrashPlan":
        """A seeded pick from *points* — same seed, same plan."""
        if not points:
            raise WorkloadError("no crash points to choose from")
        index = int(_unit(seed, 0, 0) * len(points)) % len(points)
        occurrence = int(_unit(seed, 1, 0) * 2)  # 0 or 1
        return cls(points[index], occurrence, torn_fraction, seed)


class CrashInjector:
    """Runtime side of a :class:`CrashPlan`: counts visits, fires once.

    Durability code calls :meth:`reached` at every declared crash
    point; the injector raises :class:`~repro.errors.InjectedCrash`
    when the plan's point hits its selected occurrence.  ``None`` is a
    valid plan (never fires), so call sites need no branching.
    """

    def __init__(self, plan: CrashPlan | None) -> None:
        self.plan = plan
        self.fired = False
        #: Visits per crash point, for test assertions and reports.
        self.visited: collections.Counter[str] = collections.Counter()

    def reached(self, point: str, path: str | Path | None = None,
                data: bytes | None = None, *,
                append: bool = False) -> None:
        """Declare that execution reached *point*.

        *path*/*data* describe the file write in flight at the point
        (if any): a torn plan leaves ``torn_fraction`` of *data* on
        disk before killing — written fresh, or appended to *path*'s
        existing bytes when ``append`` is true (the WAL tail case) —
        so recovery sees a partial record.
        """
        count = self.visited[point]
        self.visited[point] += 1
        plan = self.plan
        if (plan is None or self.fired or point != plan.point
                or count != plan.occurrence):
            return
        self.fired = True
        if (plan.torn_fraction is not None and path is not None
                and data is not None):
            with open(path, "ab" if append else "wb") as handle:
                handle.write(data[:int(len(data) * plan.torn_fraction)])
                handle.flush()
        raise InjectedCrash(point)


@dataclasses.dataclass(frozen=True)
class Corruption:
    """One injected byte flip: where, and what changed."""

    file: str          # store-relative path
    offset: int
    before: int
    after: int


@dataclasses.dataclass(frozen=True)
class CorruptionPlan:
    """Seeded silent bit rot over a committed store directory.

    ``apply`` flips ``flips`` bytes at deterministic (file, offset)
    positions — same seed and same store layout, same flips — and
    returns the :class:`Corruption` records so a test can assert that
    ``scrub()`` attributes every single one.
    """

    seed: int = 0
    flips: int = 1

    def __post_init__(self) -> None:
        if self.flips < 1:
            raise WorkloadError(f"bad flip count: {self.flips}")

    def targets(self, root: str | Path) -> list[Path]:
        """The files eligible for corruption, in deterministic order."""
        root = Path(root)
        return sorted(p for p in root.rglob("*")
                      if p.is_file() and not p.name.endswith(".tmp"))

    def apply(self, root: str | Path) -> list[Corruption]:
        """Flip bytes in place; returns what was damaged."""
        root = Path(root)
        files = [p for p in self.targets(root) if p.stat().st_size > 0]
        if not files:
            raise WorkloadError(f"nothing to corrupt under {root}")
        corruptions: list[Corruption] = []
        taken: set[tuple[str, int]] = set()
        salt = 0
        while len(corruptions) < self.flips:
            draw = len(corruptions)
            path = files[int(_unit(self.seed, draw, salt)
                             * len(files)) % len(files)]
            size = path.stat().st_size
            offset = int(_unit(self.seed, draw, salt + 1) * size) % size
            key = (str(path), offset)
            if key in taken:
                salt += 2   # re-draw deterministically
                continue
            taken.add(key)
            mask = 1 + int(_unit(self.seed, draw, salt + 2) * 254)
            with open(path, "r+b") as handle:
                handle.seek(offset)
                before = handle.read(1)[0]
                handle.seek(offset)
                handle.write(bytes([before ^ mask]))
            corruptions.append(Corruption(
                str(path.relative_to(root)), offset, before, before ^ mask))
        return corruptions
