"""Block-trace analysis: the paper's I/O characterization toolkit.

Consumes :class:`~repro.storage.tracer.BlockTracer` records and produces
the quantities of Section V: per-interval bandwidth series (Figure 5),
request-size histograms (O-15), and per-query average I/O volume
(Figure 6).
"""

from __future__ import annotations

import collections
import dataclasses
import typing as t

import numpy as np

from repro.errors import ReproError
from repro.storage.tracer import TraceRecord


@dataclasses.dataclass(frozen=True)
class BandwidthSeries:
    """Read/write bandwidth aggregated into fixed time buckets."""

    interval_s: float
    starts: np.ndarray          # bucket start times
    read_bytes: np.ndarray      # bytes issued per bucket
    write_bytes: np.ndarray

    @property
    def read_bandwidth(self) -> np.ndarray:
        """Bytes/second per bucket."""
        return self.read_bytes / self.interval_s

    @property
    def write_bandwidth(self) -> np.ndarray:
        return self.write_bytes / self.interval_s

    def peak_read_bandwidth(self) -> float:
        return float(self.read_bandwidth.max()) if len(self.starts) else 0.0

    def mean_read_bandwidth(self) -> float:
        return float(self.read_bandwidth.mean()) if len(self.starts) else 0.0


def bandwidth_series(records: t.Sequence[TraceRecord],
                     interval_s: float = 1.0,
                     end: float | None = None) -> BandwidthSeries:
    """Bucket request bytes into fixed intervals (paper Figure 5)."""
    if interval_s <= 0:
        raise ReproError(f"non-positive interval: {interval_s}")
    if not records:
        return BandwidthSeries(interval_s, np.empty(0), np.empty(0),
                               np.empty(0))
    horizon = end if end is not None else max(r.timestamp for r in records)
    n_buckets = max(1, int(np.ceil(horizon / interval_s)) or 1)
    reads = np.zeros(n_buckets)
    writes = np.zeros(n_buckets)
    for record in records:
        bucket = min(n_buckets - 1, int(record.timestamp // interval_s))
        if record.op == "R":
            reads[bucket] += record.size
        else:
            writes[bucket] += record.size
    starts = np.arange(n_buckets) * interval_s
    return BandwidthSeries(interval_s, starts, reads, writes)


def request_size_histogram(records: t.Sequence[TraceRecord],
                           op: str | None = "R") -> dict[int, int]:
    """Count of requests by size in bytes (paper O-15)."""
    histogram: dict[int, int] = collections.Counter()
    for record in records:
        if op is None or record.op == op:
            histogram[record.size] += 1
    return dict(histogram)


def fraction_at_size(records: t.Sequence[TraceRecord], size: int,
                     op: str | None = "R") -> float:
    """Fraction of (read) requests of exactly *size* bytes."""
    histogram = request_size_histogram(records, op)
    total = sum(histogram.values())
    if total == 0:
        raise ReproError("no matching trace records")
    return histogram.get(size, 0) / total


def total_bytes(records: t.Sequence[TraceRecord],
                op: str | None = "R") -> int:
    """Total bytes issued, optionally filtered by direction."""
    return sum(r.size for r in records if op is None or r.op == op)


def per_query_volume(records: t.Sequence[TraceRecord],
                     completed_queries: int,
                     op: str | None = "R") -> float:
    """Average bytes issued per completed query (paper Figure 6)."""
    if completed_queries <= 0:
        raise ReproError(
            f"per-query volume needs completed queries: {completed_queries}")
    return total_bytes(records, op) / completed_queries


def offset_reuse_stats(records: t.Sequence[TraceRecord],
                       ) -> tuple[int, float]:
    """(#unique offsets, mean accesses per offset) of read requests.

    Quantifies the access locality that makes the DiskANN node caches
    effective (Section V-B discussion).
    """
    counts = collections.Counter(r.offset for r in records if r.op == "R")
    if not counts:
        raise ReproError("no read records")
    return len(counts), float(np.mean(list(counts.values())))
