"""Block-trace analysis: the paper's I/O characterization toolkit.

Consumes :class:`~repro.storage.tracer.BlockTracer` records and produces
the quantities of Section V: per-interval bandwidth series (Figure 5),
request-size histograms (O-15), and per-query average I/O volume
(Figure 6).

The span-based helpers at the bottom compute the same Figure 6
quantities *per query* from :class:`~repro.obs.QuerySpan` telemetry —
the true distribution rather than the run-total-divided-by-completed
average the block trace alone can give.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as t

import numpy as np

from repro.errors import ReproError
from repro.obs import SIZE_BUCKETS, Histogram, QuerySpan
from repro.storage.tracer import TraceRecord


@dataclasses.dataclass(frozen=True)
class BandwidthSeries:
    """Read/write bandwidth aggregated into fixed time buckets."""

    interval_s: float
    starts: np.ndarray          # bucket start times
    read_bytes: np.ndarray      # bytes issued per bucket
    write_bytes: np.ndarray

    @property
    def read_bandwidth(self) -> np.ndarray:
        """Bytes/second per bucket."""
        return self.read_bytes / self.interval_s

    @property
    def write_bandwidth(self) -> np.ndarray:
        return self.write_bytes / self.interval_s

    def peak_read_bandwidth(self) -> float:
        return float(self.read_bandwidth.max()) if len(self.starts) else 0.0

    def mean_read_bandwidth(self) -> float:
        return float(self.read_bandwidth.mean()) if len(self.starts) else 0.0


def bandwidth_series(records: t.Sequence[TraceRecord],
                     interval_s: float = 1.0,
                     end: float | None = None) -> BandwidthSeries:
    """Bucket request bytes into fixed intervals (paper Figure 5)."""
    if interval_s <= 0:
        raise ReproError(f"non-positive interval: {interval_s}")
    if not records:
        return BandwidthSeries(interval_s, np.empty(0), np.empty(0),
                               np.empty(0))
    horizon = end if end is not None else max(r.timestamp for r in records)
    n_buckets = max(1, int(np.ceil(horizon / interval_s)) or 1)
    reads = np.zeros(n_buckets)
    writes = np.zeros(n_buckets)
    for record in records:
        bucket = min(n_buckets - 1, int(record.timestamp // interval_s))
        if record.op == "R":
            reads[bucket] += record.size
        else:
            writes[bucket] += record.size
    starts = np.arange(n_buckets) * interval_s
    return BandwidthSeries(interval_s, starts, reads, writes)


def request_size_histogram(records: t.Sequence[TraceRecord],
                           op: str | None = "R") -> dict[int, int]:
    """Count of requests by size in bytes (paper O-15)."""
    histogram: dict[int, int] = collections.Counter()
    for record in records:
        if op is None or record.op == op:
            histogram[record.size] += 1
    return dict(histogram)


def fraction_at_size(records: t.Sequence[TraceRecord], size: int,
                     op: str | None = "R") -> float:
    """Fraction of (read) requests of exactly *size* bytes."""
    histogram = request_size_histogram(records, op)
    total = sum(histogram.values())
    if total == 0:
        raise ReproError("no matching trace records")
    return histogram.get(size, 0) / total


def total_bytes(records: t.Sequence[TraceRecord],
                op: str | None = "R") -> int:
    """Total bytes issued, optionally filtered by direction."""
    return sum(r.size for r in records if op is None or r.op == op)


def per_query_volume(records: t.Sequence[TraceRecord],
                     completed_queries: int,
                     op: str | None = "R") -> float:
    """Average bytes issued per completed query (paper Figure 6)."""
    if completed_queries <= 0:
        raise ReproError(
            f"per-query volume needs completed queries: {completed_queries}")
    return total_bytes(records, op) / completed_queries


# -- per-query breakdowns from telemetry spans -------------------------------


def per_query_io_histogram(spans: t.Sequence[QuerySpan],
                           ) -> Histogram:
    """Distribution of device read bytes per query (Figure 6, exactly).

    Built directly from telemetry spans instead of dividing the run's
    block-trace total by its completed-query count, so it preserves the
    spread (cold-vs-warm replays, cache-hit variance) that the paper's
    averages flatten.
    """
    if not spans:
        raise ReproError("per-query histogram needs spans")
    hist = Histogram("per_query_read_bytes", SIZE_BUCKETS)
    for span in spans:
        hist.observe(span.read_bytes)
    return hist


def per_query_volume_from_spans(spans: t.Sequence[QuerySpan]) -> float:
    """Mean device read bytes per query, from spans.

    Equals :func:`per_query_volume` over the same run's trace records
    when queries are the only readers (the reconciliation the telemetry
    tests assert).
    """
    if not spans:
        raise ReproError("per-query volume needs spans")
    return sum(span.read_bytes for span in spans) / len(spans)


def stage_latency_breakdown(spans: t.Sequence[QuerySpan],
                            ) -> dict[str, dict[str, float]]:
    """Per-stage time totals and shares over a run's spans.

    Returns ``{stage: {"total_s", "mean_s", "share"}}`` where ``share``
    is the stage's fraction of all attributed time — the decomposition
    behind the paper's CPU-vs-I/O bottleneck arguments (Figure 4, O-5).
    """
    if not spans:
        raise ReproError("stage breakdown needs spans")
    totals: dict[str, float] = collections.defaultdict(float)
    for span in spans:
        for stage, seconds in span.stages.items():
            totals[stage] += seconds
    grand = sum(totals.values())
    return {stage: {"total_s": total,
                    "mean_s": total / len(spans),
                    "share": total / grand if grand else 0.0}
            for stage, total in sorted(totals.items())}


def cold_warm_split(spans: t.Sequence[QuerySpan],
                    ) -> dict[str, dict[str, float]]:
    """Mean latency and read bytes, split by cold-vs-warm replay."""
    if not spans:
        raise ReproError("cold/warm split needs spans")
    out: dict[str, dict[str, float]] = {}
    for label, subset in (("cold", [s for s in spans if s.cold]),
                          ("warm", [s for s in spans if not s.cold])):
        if subset:
            out[label] = {
                "queries": float(len(subset)),
                "mean_latency_s": float(np.mean(
                    [s.latency_s for s in subset])),
                "mean_read_bytes": float(np.mean(
                    [s.read_bytes for s in subset])),
            }
    return out


def offset_reuse_stats(records: t.Sequence[TraceRecord],
                       ) -> tuple[int, float]:
    """(#unique offsets, mean accesses per offset) of read requests.

    Quantifies the access locality that makes the DiskANN node caches
    effective (Section V-B discussion).
    """
    counts = collections.Counter(r.offset for r in records if r.op == "R")
    if not counts:
        raise ReproError("no read records")
    return len(counts), float(np.mean(list(counts.values())))
