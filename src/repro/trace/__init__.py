"""Block-trace analysis for the paper's I/O characterization."""

from repro.trace.analysis import (BandwidthSeries, bandwidth_series,
                                  fraction_at_size, offset_reuse_stats,
                                  per_query_volume, request_size_histogram,
                                  total_bytes)

__all__ = [
    "BandwidthSeries",
    "bandwidth_series",
    "fraction_at_size",
    "offset_reuse_stats",
    "per_query_volume",
    "request_size_histogram",
    "total_bytes",
]
