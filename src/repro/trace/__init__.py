"""Block-trace analysis for the paper's I/O characterization."""

from repro.trace.analysis import (BandwidthSeries, bandwidth_series,
                                  cold_warm_split, fraction_at_size,
                                  offset_reuse_stats, per_query_io_histogram,
                                  per_query_volume,
                                  per_query_volume_from_spans,
                                  request_size_histogram,
                                  stage_latency_breakdown, total_bytes)

__all__ = [
    "BandwidthSeries",
    "bandwidth_series",
    "cold_warm_split",
    "fraction_at_size",
    "offset_reuse_stats",
    "per_query_io_histogram",
    "per_query_volume",
    "per_query_volume_from_spans",
    "request_size_histogram",
    "stage_latency_breakdown",
    "total_bytes",
]
