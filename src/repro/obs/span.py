"""Per-query spans: attributing time and I/O to individual queries.

A :class:`QuerySpan` is opened when the benchmark runner issues a query
and closed when the query's reply leaves the (simulated) server.  In
between, the runner's process generators record where the simulated time
went — the stages of the paper's query path:

* ``rpc`` — network/protocol round-trip halves (no server CPU);
* ``pool_wait`` — time queued behind the DiskANN admission pool;
* ``cpu`` — core-seconds of actual computation;
* ``cpu_wait`` — time runnable but queued for a core;
* ``device`` — time blocked on *demand* block-device rounds;
* ``prefetch`` — time blocked joining speculative reads still in
  flight (zero when the look-ahead fully overlapped them);
* ``fault`` — fault-handling overhead: abandoned (timed-out) read
  waits and retry backoff sleeps (zero on a healthy run);
* ``queue`` — time spent in the serving layer's admission queue
  between arrival and dispatch (zero on closed-loop runs, where a
  client never issues before its previous query returned — see
  :mod:`repro.serve`).  Everything after dispatch is time in
  *service*: the latency decomposition is ``queue`` vs the sum of
  the other stages;
* ``network`` — cross-node hop latency on the scatter-gather path:
  the coordinator waiting on the interconnect rather than on any
  shard's CPU or device (zero on single-node runs — see
  :mod:`repro.cluster`);
* ``merge`` — coordinator CPU spent merging per-shard top-k results
  into the global answer (zero on single-node runs);
* ``compact`` — the full wall-clock window of one background
  compaction merging the mutation delta into a new snapshot.  Only
  compaction spans (opened by
  :meth:`~repro.obs.telemetry.RunTelemetry.begin_compaction`, with
  ``index == client_id == -1``) carry this stage; query spans never
  do, and compaction spans never enter the query-latency histogram —
  the stage exists so the interference window is visible next to the
  query stages it disturbs (see :mod:`repro.mutate`).

On cluster runs the coordinator namespaces each shard's segments at
``shard * 1024 + segment`` so per-shard :class:`SegmentTiming` records
never collide in :attr:`QuerySpan.segments`.

Stage timings are kept both per segment (:class:`SegmentTiming`, one per
searched segment, mirroring Milvus's intra-query parallelism) and as
query-level totals, alongside the query's device read volume and node-
cache hits.  Summing ``read_bytes`` over spans reproduces the run's
block-level read volume exactly — the per-query attribution the paper's
Figure 6 derives by dividing run totals.
"""

from __future__ import annotations

import dataclasses
import typing as t

STAGES = ("queue", "rpc", "pool_wait", "cpu", "cpu_wait", "device",
          "prefetch", "fault", "network", "merge", "compact")


@dataclasses.dataclass
class SegmentTiming:
    """Stage timings and I/O of one segment within one query."""

    cpu_s: float = 0.0
    cpu_wait_s: float = 0.0
    device_s: float = 0.0
    prefetch_wait_s: float = 0.0
    read_bytes: int = 0
    read_requests: int = 0
    cache_hits: int = 0
    prefetch_bytes: int = 0
    prefetch_requests: int = 0
    prefetch_useful: int = 0
    prefetch_wasted: int = 0

    def to_dict(self) -> dict[str, t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class QuerySpan:
    """The telemetry record of one replayed query."""

    query_id: int               # global issue ordinal within the run
    index: int                  # position in the query set
    client_id: int
    cold: bool                  # replayed the cold (post-drop) plan?
    start_s: float
    end_s: float = 0.0
    #: Replayed with degraded (pressure-shrunken) search parameters?
    degraded: bool = False
    stages: dict[str, float] = dataclasses.field(default_factory=dict)
    segments: dict[int, SegmentTiming] = dataclasses.field(
        default_factory=dict)
    read_bytes: int = 0
    read_requests: int = 0
    cache_hits: int = 0
    prefetch_bytes: int = 0
    prefetch_requests: int = 0
    prefetch_useful: int = 0
    prefetch_wasted: int = 0

    def add_stage(self, stage: str, seconds: float) -> None:
        """Accumulate *seconds* into a query-level stage."""
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def segment(self, seg: int) -> SegmentTiming:
        """The (lazily created) timing record of segment position *seg*."""
        timing = self.segments.get(seg)
        if timing is None:
            timing = self.segments[seg] = SegmentTiming()
        return timing

    def finish(self, now: float) -> None:
        """Close the span: roll per-segment stages into query totals."""
        self.end_s = now
        for timing in self.segments.values():
            if timing.cpu_s:
                self.add_stage("cpu", timing.cpu_s)
            if timing.cpu_wait_s:
                self.add_stage("cpu_wait", timing.cpu_wait_s)
            if timing.device_s:
                self.add_stage("device", timing.device_s)
            if timing.prefetch_wait_s:
                self.add_stage("prefetch", timing.prefetch_wait_s)
            self.read_bytes += timing.read_bytes
            self.read_requests += timing.read_requests
            self.cache_hits += timing.cache_hits
            self.prefetch_bytes += timing.prefetch_bytes
            self.prefetch_requests += timing.prefetch_requests
            self.prefetch_useful += timing.prefetch_useful
            self.prefetch_wasted += timing.prefetch_wasted

    @property
    def latency_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "query_id": self.query_id,
            "index": self.index,
            "client_id": self.client_id,
            "cold": self.cold,
            "degraded": self.degraded,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "stages": dict(self.stages),
            "segments": {str(seg): timing.to_dict()
                         for seg, timing in self.segments.items()},
            "read_bytes": self.read_bytes,
            "read_requests": self.read_requests,
            "cache_hits": self.cache_hits,
            "prefetch_bytes": self.prefetch_bytes,
            "prefetch_requests": self.prefetch_requests,
            "prefetch_useful": self.prefetch_useful,
            "prefetch_wasted": self.prefetch_wasted,
        }

    @classmethod
    def from_dict(cls, data: dict[str, t.Any]) -> "QuerySpan":
        # Prefetch/fault fields default to 0/False for spans exported
        # before those subsystems existed.
        span = cls(query_id=data["query_id"], index=data["index"],
                   client_id=data["client_id"], cold=data["cold"],
                   degraded=data.get("degraded", False),
                   start_s=data["start_s"], end_s=data["end_s"],
                   stages=dict(data["stages"]),
                   read_bytes=data["read_bytes"],
                   read_requests=data["read_requests"],
                   cache_hits=data["cache_hits"],
                   prefetch_bytes=data.get("prefetch_bytes", 0),
                   prefetch_requests=data.get("prefetch_requests", 0),
                   prefetch_useful=data.get("prefetch_useful", 0),
                   prefetch_wasted=data.get("prefetch_wasted", 0))
        span.segments = {int(seg): SegmentTiming(**timing)
                         for seg, timing in data["segments"].items()}
        return span
