"""Counter and histogram primitives for run telemetry.

The paper's I/O characterization (Section V) is built from two kinds of
distributions: *latencies* (query and stage durations, best viewed on a
log axis) and *request sizes* (which the block layer quantizes to
power-of-two-ish granularities — the pure-4 KiB streams of O-15).  Both
bucket schemes are therefore fixed at import time:

* :data:`LATENCY_BUCKETS_S` — log-spaced edges, four per decade, from
  1 us to 10 s;
* :data:`SIZE_BUCKETS` — power-of-two edges from 512 B to 16 MiB.

Fixed buckets make histograms mergeable across queries, runs, and
repetitions without rebinning, and render directly as Prometheus
cumulative buckets.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ReproError

#: Log-spaced latency bucket upper edges in seconds: 10^(i/4) for
#: i in [-24, 4], i.e. 1 us .. 10 s, four buckets per decade.
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    10.0 ** (i / 4) for i in range(-24, 5))

#: Power-of-two request-size bucket upper edges in bytes: 512 B .. 16 MiB.
SIZE_BUCKETS: tuple[int, ...] = tuple(1 << p for p in range(9, 25))

#: Queue-depth bucket upper edges (0, then powers of two up to 1024).
DEPTH_BUCKETS: tuple[int, ...] = (0,) + tuple(1 << p for p in range(11))


@dataclasses.dataclass
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} decremented: {amount}")
        self.value += amount

    def to_dict(self) -> dict[str, t.Any]:
        return {"name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count, sum, and an overflow bucket.

    ``buckets`` are *upper* edges; an observation lands in the first
    bucket whose edge is >= the value, or in the overflow bucket past
    the last edge.  Edges must be strictly increasing.
    """

    def __init__(self, name: str,
                 buckets: t.Sequence[float] = LATENCY_BUCKETS_S) -> None:
        if not buckets or any(b <= a for a, b in zip(buckets, buckets[1:])):
            raise ReproError(f"histogram edges must increase: {buckets}")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        self.counts[self._bucket_of(value)] += 1

    def _bucket_of(self, value: float) -> int:
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[int]:
        """Cumulative counts per edge (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for c in self.counts[:-1]:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the q-th bucket."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"bad quantile: {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for edge, c in zip(self.buckets, self.counts):
            running += c
            if running >= target:
                return float(edge)
        return float(self.buckets[-1])

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (same edges required)."""
        if other.buckets != self.buckets:
            raise ReproError(
                f"cannot merge histograms with different edges: "
                f"{self.name} / {other.name}")
        self.count += other.count
        self.sum += other.sum
        for i, c in enumerate(other.counts):
            self.counts[i] += c

    def to_dict(self) -> dict[str, t.Any]:
        return {"name": self.name, "buckets": list(self.buckets),
                "counts": list(self.counts), "count": self.count,
                "sum": self.sum}

    @classmethod
    def from_dict(cls, data: dict[str, t.Any]) -> "Histogram":
        hist = cls(data["name"], tuple(data["buckets"]))
        hist.counts = list(data["counts"])
        hist.count = data["count"]
        hist.sum = data["sum"]
        return hist
