"""Telemetry exporters: JSON-lines span dumps and Prometheus text.

Two formats cover the two consumption modes:

* **JSON lines** — one span per line, lossless, for offline analysis
  (the per-query Figure 6 reconstruction in :mod:`repro.trace.analysis`
  reads these back);
* **Prometheus text exposition** — aggregated counters and cumulative
  histograms, for scraping a long-running serving deployment.
"""

from __future__ import annotations

import json
import typing as t

from repro.errors import ReproError
from repro.obs.span import QuerySpan
from repro.obs.telemetry import RunTelemetry


def spans_to_jsonl(spans: t.Sequence[QuerySpan]) -> str:
    """Serialize spans as one JSON object per line."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True)
                     for span in spans)


def spans_from_jsonl(text: str) -> list[QuerySpan]:
    """Parse a JSON-lines dump back into spans."""
    spans = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(QuerySpan.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ReproError(f"bad span on line {lineno}: {exc}") from exc
    return spans


def write_spans_jsonl(spans: t.Sequence[QuerySpan], path: str) -> None:
    with open(path, "w") as handle:
        text = spans_to_jsonl(spans)
        handle.write(text + "\n" if text else "")


def read_spans_jsonl(path: str) -> list[QuerySpan]:
    with open(path) as handle:
        return spans_from_jsonl(handle.read())


def _metric_name(name: str) -> str:
    """Sanitize a telemetry name into a Prometheus metric name."""
    return "repro_" + "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _render_histogram(lines: list[str], hist, labels: str = "") -> None:
    name = _metric_name(hist.name.split(":")[0])
    lines.append(f"# TYPE {name} histogram")
    running = 0
    for edge, count in zip(hist.buckets, hist.counts):
        running += count
        le = f"{edge:g}"
        sep = "," if labels else ""
        lines.append(f'{name}_bucket{{{labels}{sep}le="{le}"}} {running}')
    sep = "," if labels else ""
    lines.append(f'{name}_bucket{{{labels}{sep}le="+Inf"}} {hist.count}')
    lines.append(f"{name}_sum{{{labels}}} {hist.sum:g}")
    lines.append(f"{name}_count{{{labels}}} {hist.count}")


def render_prometheus(telemetry: RunTelemetry) -> str:
    """Render a run's aggregates in Prometheus text exposition format."""
    lines: list[str] = []
    for name, counter in sorted(telemetry.counters.items()):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value}")
    _render_histogram(lines, telemetry.query_latency)
    for stage, hist in sorted(telemetry.stage_latency.items()):
        _render_histogram(lines, hist, labels=f'stage="{stage}"')
    _render_histogram(lines, telemetry.read_request_size)
    _render_histogram(lines, telemetry.per_query_read_bytes)
    for resource, hist in sorted(telemetry.queue_depth.items()):
        _render_histogram(lines, hist, labels=f'resource="{resource}"')
    return "\n".join(lines) + "\n"


def write_prometheus(telemetry: RunTelemetry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(render_prometheus(telemetry))
