"""Run-level telemetry: spans plus aggregated counters and histograms.

One :class:`RunTelemetry` instance is threaded through a single
:meth:`~repro.workload.runner.BenchRunner.run` call.  The runner opens a
:class:`~repro.obs.span.QuerySpan` per issued query; the simulated
device, the core/pool :class:`~repro.simkernel.resources.Resource`
pools, and the index node caches report into the shared aggregates:

* ``query_latency`` / ``stage_latency[stage]`` — log-bucketed latency
  histograms (the per-stage breakdown behind Figures 2-4);
* ``read_request_size`` — power-of-two request-size histogram (O-15);
* ``per_query_read_bytes`` — per-query I/O volume histogram, the
  distribution underlying Figure 6's averages;
* ``queue_depth[resource]`` — wait-queue depth sampled at each request
  arrival (CPU cores, DiskANN admission pool);
* free-form counters — device bytes/requests, cache hits and misses.

Telemetry is strictly passive: with it attached, the simulation makes
exactly the same scheduling decisions, so enabling it never changes the
benchmark numbers (asserted by the equivalence tests).
"""

from __future__ import annotations

import typing as t

from repro.obs.primitives import (DEPTH_BUCKETS, LATENCY_BUCKETS_S,
                                  SIZE_BUCKETS, Counter, Histogram)
from repro.obs.span import QuerySpan


class RunTelemetry:
    """Telemetry of one benchmark run: spans + aggregates."""

    def __init__(self) -> None:
        self.spans: list[QuerySpan] = []
        #: Background-compaction spans (see :mod:`repro.mutate`) — kept
        #: apart from query spans so ``query_latency`` and the
        #: per-query aggregates stay a pure query population.
        self.compaction_spans: list[QuerySpan] = []
        self.query_latency = Histogram("query_latency_s", LATENCY_BUCKETS_S)
        self.stage_latency: dict[str, Histogram] = {}
        self.read_request_size = Histogram("read_request_size_bytes",
                                           SIZE_BUCKETS)
        self.per_query_read_bytes = Histogram("per_query_read_bytes",
                                              SIZE_BUCKETS)
        self.queue_depth: dict[str, Histogram] = {}
        self.counters: dict[str, Counter] = {}
        #: Duration of each completed demand read round — the healthy
        #: distribution from which a P99-based hedge delay is derived
        #: (see :func:`repro.faults.resilience.ResiliencePolicy`).
        self.device_round = Histogram("device_round_s", LATENCY_BUCKETS_S)

    # -- span lifecycle (called by the runner) ---------------------------

    def begin_query(self, query_id: int, index: int, client_id: int,
                    cold: bool, now: float) -> QuerySpan:
        """Open the span of one issued query."""
        span = QuerySpan(query_id=query_id, index=index,
                         client_id=client_id, cold=cold, start_s=now)
        self.spans.append(span)
        return span

    def end_query(self, span: QuerySpan, now: float) -> None:
        """Close a span and fold it into the aggregates."""
        span.finish(now)
        self.query_latency.observe(span.latency_s)
        for stage, seconds in span.stages.items():
            hist = self.stage_latency.get(stage)
            if hist is None:
                hist = self.stage_latency[stage] = Histogram(
                    f"stage_latency_s:{stage}", LATENCY_BUCKETS_S)
            hist.observe(seconds)
        self.per_query_read_bytes.observe(span.read_bytes)
        if span.cache_hits:
            self.counter("query_cache_hits").inc(span.cache_hits)
        if span.prefetch_useful or span.prefetch_wasted:
            self.counter("prefetch_issued").inc(
                span.prefetch_useful + span.prefetch_wasted)
            self.counter("prefetch_useful").inc(span.prefetch_useful)
            self.counter("prefetch_wasted").inc(span.prefetch_wasted)
        if span.degraded:
            self.counter("degraded_queries").inc()

    def begin_compaction(self, ordinal: int, now: float) -> QuerySpan:
        """Open the span of one background compaction.

        Compaction spans reuse :class:`~repro.obs.span.QuerySpan` with
        ``index == client_id == -1`` and ``query_id`` the compaction
        ordinal; they live in :attr:`compaction_spans`, never in
        :attr:`spans`.
        """
        span = QuerySpan(query_id=ordinal, index=-1, client_id=-1,
                         cold=False, start_s=now)
        self.compaction_spans.append(span)
        return span

    def end_compaction(self, span: QuerySpan, now: float) -> None:
        """Close a compaction span: its whole window becomes the
        ``compact`` stage and its stages feed ``stage_latency``, but it
        never enters ``query_latency`` — P99 stays a query number."""
        span.finish(now)
        span.add_stage("compact", span.latency_s)
        for stage, seconds in span.stages.items():
            hist = self.stage_latency.get(stage)
            if hist is None:
                hist = self.stage_latency[stage] = Histogram(
                    f"stage_latency_s:{stage}", LATENCY_BUCKETS_S)
            hist.observe(seconds)

    # -- hooks (called by instrumented components) -----------------------

    def on_device_submit(self, op: str,
                         requests: t.Sequence[tuple[int, int]],
                         speculative: bool = False) -> None:
        """Record one batch submitted to the simulated device.

        Speculative (prefetch) reads count toward the device totals —
        they really occupy channels — and additionally into the
        ``device_prefetch_*`` counters for attribution.
        """
        total = sum(size for _off, size in requests)
        if op == "R":
            for _off, size in requests:
                self.read_request_size.observe(size)
            self.counter("device_read_requests").inc(len(requests))
            self.counter("device_read_bytes").inc(total)
            if speculative:
                self.counter("device_prefetch_requests").inc(len(requests))
                self.counter("device_prefetch_bytes").inc(total)
        else:
            self.counter("device_write_requests").inc(len(requests))
            self.counter("device_write_bytes").inc(total)

    def on_fault(self, kind: str) -> None:
        """Record one injected fault (called by the fault injector)."""
        self.counter(f"fault_injected_{kind}").inc()

    def on_resilience(self, event: str, amount: int = 1) -> None:
        """Record resilience actions: ``timeouts``, ``retries``,
        ``hedges``, ``hedge_wins``, or ``read_failures``."""
        self.counter(f"resilience_{event}").inc(amount)

    def on_serve(self, event: str, amount: int = 1) -> None:
        """Record serving-layer admission outcomes (see
        :mod:`repro.serve`): ``arrivals``, ``admitted``, ``rejected``
        (queue-bound admission control), ``shed`` (deadline-based load
        shedding at dispatch), ``batches``, ``completed``,
        ``slo_completions`` (finished within deadline), or
        ``slo_misses``."""
        self.counter(f"serve_{event}").inc(amount)

    def on_tenancy(self, event: str, amount: int = 1) -> None:
        """Record control-plane actions (see :mod:`repro.tenancy`):
        ``intervals`` (controller wake-ups), ``degrades`` and
        ``restores`` (per-tenant ladder moves), ``floor_capped``
        (degrades refused by a tenant's recall floor), ``promotions``
        and ``demotions`` (placement tier migrations completed), or
        ``quota_rejected`` (arrivals priced out by a token bucket —
        also counted under ``serve_rejected``)."""
        self.counter(f"tenancy_{event}").inc(amount)

    def on_cluster(self, event: str, amount: int = 1) -> None:
        """Record scatter-gather outcomes (see :mod:`repro.cluster`):
        ``fanout`` (shard requests issued), ``hedges`` and
        ``hedge_wins`` (duplicate cross-node requests raced against a
        slow replica), ``failovers`` (replica retries after a node
        death), ``quorum_waits`` (quorum satisfied before all replicas
        answered), ``partial_results`` (queries answered from a shard
        subset at the partial-result deadline), ``shards_missed``
        (shard answers dropped by those deadlines), or ``migrations``
        (replica moves completed while serving)."""
        self.counter(f"cluster_{event}").inc(amount)

    def on_chaos(self, event: str, amount: int = 1) -> None:
        """Record chaos-layer events (see :mod:`repro.chaos`):
        ``probes`` and ``probe_misses`` (supervisor health probing),
        ``failures_detected`` (nodes declared failed after consecutive
        probe misses), ``rereplications`` (shard replicas rebuilt onto
        spares), ``scrubs`` and ``scrub_findings`` (durability scrubs
        of rebuilt replicas), ``no_spare`` (recoveries skipped because
        the spare pool ran dry), or ``unrecoverable`` (shards with no
        live replica left to stream from)."""
        self.counter(f"chaos_{event}").inc(amount)

    def on_durability(self, event: str, amount: int = 1) -> None:
        """Record durability actions (see :mod:`repro.durability`):
        ``saves``, ``loads``, ``records_written``, ``records_verified``,
        ``wal_replayed``, ``torn_tail_truncated``, ``scrubs``,
        ``scrub_findings``, or ``repair_removed``."""
        self.counter(f"durability_{event}").inc(amount)

    def on_mutate(self, event: str, amount: int = 1) -> None:
        """Record streaming-mutability activity (see
        :mod:`repro.mutate`): ``insert_rows``, ``delete_rows``,
        ``wal_flushes``, ``wal_bytes``, ``compactions``,
        ``compaction_read_bytes``, ``compaction_write_bytes``,
        ``compaction_commits``, ``compacted_rows_kept``, or
        ``compacted_rows_dropped``."""
        self.counter(f"mutate_{event}").inc(amount)

    def observe_queue_depth(self, resource: str, depth: int) -> None:
        """Sample a resource's wait-queue depth at request arrival."""
        hist = self.queue_depth.get(resource)
        if hist is None:
            hist = self.queue_depth[resource] = Histogram(
                f"queue_depth:{resource}", DEPTH_BUCKETS)
        hist.observe(depth)

    def on_cache_access(self, cache: str, hit: bool) -> None:
        """Record one node/page-cache lookup."""
        self.counter(f"cache_{cache}_{'hits' if hit else 'misses'}").inc()

    def record_cache_stats(self, cache: str, hits: int,
                           misses: int) -> None:
        """Fold a cache's counter snapshot into the telemetry."""
        self.counter(f"cache_{cache}_hits").inc(hits)
        self.counter(f"cache_{cache}_misses").inc(misses)

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    # -- aggregates -------------------------------------------------------

    @property
    def total_read_bytes(self) -> int:
        """Device read bytes attributed to queries, over all spans.

        Demand plus speculative (prefetch) reads — the span-side total
        that reconciles with the device counters and the block trace.
        """
        return sum(span.read_bytes + span.prefetch_bytes
                   for span in self.spans)

    @property
    def total_cache_hits(self) -> int:
        return sum(span.cache_hits for span in self.spans)

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of speculative reads later consumed by the beam."""
        issued = self.counters.get("prefetch_issued", Counter("")).value
        useful = self.counters.get("prefetch_useful", Counter("")).value
        return useful / issued if issued else 0.0

    @property
    def wasted_read_ratio(self) -> float:
        """Speculative bytes never consumed, over all device read bytes.

        The cost side of look-ahead prefetching: the extra read volume
        paid for the latency overlap.
        """
        wasted_bytes = sum(
            span.prefetch_bytes * (span.prefetch_wasted
                                   / (span.prefetch_useful
                                      + span.prefetch_wasted))
            for span in self.spans
            if span.prefetch_useful + span.prefetch_wasted)
        read = self.counters.get("device_read_bytes", Counter("")).value
        return wasted_bytes / read if read else 0.0

    @property
    def degraded_query_ratio(self) -> float:
        """Fraction of spans replayed with degraded search parameters."""
        if not self.spans:
            return 0.0
        return (sum(1 for span in self.spans if span.degraded)
                / len(self.spans))

    def cache_hit_rate(self, cache: str) -> float:
        """Hit fraction of one named cache (0.0 when never accessed)."""
        hits = self.counters.get(f"cache_{cache}_hits", Counter("")).value
        misses = self.counters.get(f"cache_{cache}_misses",
                                   Counter("")).value
        total = hits + misses
        return hits / total if total else 0.0

    def summary(self) -> dict[str, t.Any]:
        """Compact roll-up used by reports and tests."""
        return {
            "queries": len(self.spans),
            "compactions": len(self.compaction_spans),
            "total_read_bytes": self.total_read_bytes,
            "total_cache_hits": self.total_cache_hits,
            "prefetch_hit_rate": self.prefetch_hit_rate,
            "wasted_read_ratio": self.wasted_read_ratio,
            "mean_latency_s": self.query_latency.mean,
            "stage_mean_s": {stage: hist.mean
                             for stage, hist in self.stage_latency.items()},
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
        }
