"""Query-level observability for benchmark runs.

The paper characterizes I/O at the *run* level (block traces, run
totals); this package adds the *query* level: spans with per-segment
stage timings, fixed-bucket latency/size histograms, cache and queue
attribution, and exporters (JSON lines, Prometheus text).  See
DESIGN.md's "Observability" section for how spans map onto the paper's
Figures 5-6.
"""

from repro.obs.export import (read_spans_jsonl, render_prometheus,
                              spans_from_jsonl, spans_to_jsonl,
                              write_prometheus, write_spans_jsonl)
from repro.obs.primitives import (DEPTH_BUCKETS, LATENCY_BUCKETS_S,
                                  SIZE_BUCKETS, Counter, Histogram)
from repro.obs.span import STAGES, QuerySpan, SegmentTiming
from repro.obs.telemetry import RunTelemetry

__all__ = [
    "Counter",
    "DEPTH_BUCKETS",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "QuerySpan",
    "RunTelemetry",
    "STAGES",
    "SegmentTiming",
    "SIZE_BUCKETS",
    "read_spans_jsonl",
    "render_prometheus",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "write_prometheus",
    "write_spans_jsonl",
]
