"""Composed fault schedules, self-healing, and invariant oracles.

``repro.chaos`` turns the repo's individual fault planes into one
adversarial harness against a live serving cluster:

* :mod:`~repro.chaos.schedule` — :class:`ChaosSchedule` composes every
  plane (node kills, network partitions, gray failures, per-node SSD
  fault windows, a write-path crash) into one seeded, immutable value
  that flattens into atomic elements for the shrinker;
* :mod:`~repro.chaos.runner` — :func:`run_chaos` injects a schedule
  into an open- or closed-loop serving cluster with streaming
  mutation and the supervisor on the same deterministic clock;
* :mod:`~repro.chaos.supervisor` — :class:`Supervisor` health-probes
  the cluster through the chaos-aware network path, detects failed
  (or partitioned, or gray) nodes by probe timeouts alone,
  re-replicates their shards onto spares, durability-scrubs the
  rebuilt replicas, and logs per-recovery MTTR;
* :mod:`~repro.chaos.oracles` — the invariant battery every run is
  audited with: query conservation, three-ledger failure attribution,
  crash old-or-new-never-hybrid, post-chaos bitwise convergence, the
  recall floor, replica op-log prefix consistency;
* :mod:`~repro.chaos.shrink` — ddmin over a schedule's elements,
  reducing a violating composed schedule to a 1-minimal reproducer;
* :mod:`~repro.chaos.study` — the ``repro chaos`` experiment tying it
  together (see ``docs/CHAOS.md``).
"""

from repro.chaos.oracles import (OracleReport, check_attribution,
                                 check_conservation, check_convergence,
                                 check_crash_state, check_recall_floor,
                                 check_replica_consistency,
                                 cluster_fingerprint,
                                 engine_fingerprint, summarize)
from repro.chaos.runner import (ChaosRunResult, run_chaos,
                                start_cluster_mutation)
from repro.chaos.schedule import ChaosElement, ChaosSchedule
from repro.chaos.shrink import shrink_elements, shrink_schedule
from repro.chaos.supervisor import (RecoveryEvent, Supervisor,
                                    SupervisorConfig)
from repro.chaos.study import chaos_study

__all__ = [
    "ChaosElement",
    "ChaosRunResult",
    "ChaosSchedule",
    "OracleReport",
    "RecoveryEvent",
    "Supervisor",
    "SupervisorConfig",
    "chaos_study",
    "check_attribution",
    "check_conservation",
    "check_convergence",
    "check_crash_state",
    "check_recall_floor",
    "check_replica_consistency",
    "cluster_fingerprint",
    "engine_fingerprint",
    "run_chaos",
    "shrink_elements",
    "shrink_schedule",
    "start_cluster_mutation",
    "summarize",
]
