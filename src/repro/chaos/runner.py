"""The chaos harness: one composed schedule against one live cluster.

:func:`run_chaos` is the experiment kernel the chaos study and the
``repro chaos`` CLI drive.  One call takes a freshly built
:class:`~repro.cluster.runner.ClusterBenchRunner`, opens a replay
session with every fault plane of a :class:`~repro.chaos.schedule.
ChaosSchedule` armed (node kills, partitions, gray failures, per-node
SSD faults), starts the :class:`~repro.chaos.supervisor.Supervisor`
and an optional streaming-mutation load on the same clock, then serves
the configured open- or closed-loop workload through the standard
:class:`repro.serve.Server` — faults, recovery, mutation, and serving
all contend on one deterministic timeline.  Afterwards it runs the
in-run half of the invariant-oracle battery (query conservation,
three-ledger failure attribution, replica op-log prefix consistency,
optional recall floor) and returns everything as a
:class:`ChaosRunResult`.

A chaos run *consumes* its runner: the supervisor edits routing and
rebuilds functional replicas, and the mutation load grows the shard
runners' extent allocators.  Build a fresh cluster + runner per run —
that is also what makes two same-seed runs bit-identical.

The mutation load is the single-node simproc
(:func:`repro.mutate.simproc.start_mutation_load`) adapted per shard:
each shard's ingest/flush/compaction processes run on the shard
*primary*'s device and core pool, so compaction I/O contends with that
node's chaos-faulted reads exactly like the single-node study — it is
a timing-plane load (the functional op log is exercised separately by
the study's convergence phase).
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.chaos.oracles import (OracleReport, check_attribution,
                                 check_conservation, check_recall_floor,
                                 check_replica_consistency, summarize)
from repro.chaos.schedule import ChaosSchedule
from repro.chaos.supervisor import Supervisor, SupervisorConfig
from repro.errors import WorkloadError
from repro.mutate.simproc import start_mutation_load
from repro.obs import RunTelemetry
from repro.serve.server import Server

if t.TYPE_CHECKING:
    from repro.cluster.runner import (ClusterBenchRunner,
                                      ClusterReplaySession)
    from repro.faults.resilience import ResiliencePolicy
    from repro.mutate.load import MutationLoad
    from repro.mutate.simproc import MutationState
    from repro.serve import ServeConfig, ServeResult


class _PreparedRunner:
    """A runner facade whose ``open_replay`` returns a prebuilt session.

    :meth:`repro.serve.Server.serve` opens its own replay session from
    the runner it is given; the chaos harness must open the session
    *first* (to arm fault planes and start the supervisor on it), so it
    hands the server this facade instead.  Everything else the server
    reads (``engine``, ``collection``, ``queries``) passes through to
    the real cluster runner.
    """

    def __init__(self, runner: "ClusterBenchRunner",
                 session: "ClusterReplaySession") -> None:
        self.engine = runner.engine
        self.collection = runner.collection
        self.queries = runner.queries
        self._session = session

    def open_replay(self, search_params: dict | None = None, *,
                    telemetry: RunTelemetry | None = None,
                    ) -> "ClusterReplaySession":
        return self._session


class _NodeHost:
    """One data node viewed as a single-node replay session.

    Duck-types the ``env`` / ``device`` / ``cores`` surface
    :func:`repro.mutate.simproc.start_mutation_load` drives, bound to
    one cluster node's simulated hardware.
    """

    __slots__ = ("env", "device", "cores")

    def __init__(self, env, device, cores) -> None:
        self.env = env
        self.device = device
        self.cores = cores


def start_cluster_mutation(session: "ClusterReplaySession",
                           runner: "ClusterBenchRunner",
                           load: "MutationLoad", duration_s: float,
                           telemetry: RunTelemetry | None = None,
                           ) -> tuple["MutationState", ...]:
    """Start one streaming-mutation load per shard, on its primary.

    Each shard gets its own ingest/delete/flush/compaction simprocs on
    the shard primary's device and cores (primary = routing slot 0 at
    start time; a later routing cutover does not chase the load — the
    write stream keeps hammering the original device, which is the
    conservative choice for contention).  Returns the per-shard
    mutation states; read ``state.stats()`` after the run drains.
    """
    states = []
    for shard, shard_runner in enumerate(runner.shard_runners):
        primary = session.routing[shard][0]
        host = _NodeHost(session.env, session.devices[primary],
                         session.node_cores[primary])
        states.append(start_mutation_load(host, shard_runner, load,
                                          duration_s,
                                          telemetry=telemetry))
    return tuple(states)


@dataclasses.dataclass
class ChaosRunResult:
    """Everything one chaos run produced, oracles included."""

    #: The serving-side result (latency, goodput, conservation ledger).
    result: "ServeResult"
    #: The schedule that was injected.
    schedule: ChaosSchedule
    #: The supervisor that ran (inert when disabled).
    supervisor: Supervisor
    #: The (consumed) session — routing, replayer ledgers, devices.
    session: "ClusterReplaySession"
    #: Per-shard mutation states (empty when no load was started).
    mutation: tuple["MutationState", ...]
    #: The in-run oracle battery's verdicts.
    oracles: tuple[OracleReport, ...]
    #: Completion-weighted recall over the run's gather outcomes.
    recall: float | None

    @property
    def ok(self) -> bool:
        """True when every oracle in the battery passed."""
        return all(report.ok for report in self.oracles)

    @property
    def mttr_s(self) -> float | None:
        """Mean time to repair over the supervisor's recoveries."""
        return self.supervisor.mttr_s

    @property
    def failure_causes(self) -> dict[str, int]:
        """Failed queries by attributed fault kind (the ledger)."""
        return dict(sorted(
            self.session.replayer.failure_causes.items()))

    def describe(self) -> dict[str, t.Any]:
        """Scalar summary for reports and the study's JSON artifact."""
        passed, failed = summarize(self.oracles)
        return {
            "completed": self.result.completed,
            "failed": self.result.failed,
            "shed": self.result.shed,
            "p50_latency_s": self.result.p50_latency_s,
            "p99_latency_s": self.result.p99_latency_s,
            "goodput_qps": self.result.goodput_qps,
            "recall": self.recall,
            "failure_causes": self.failure_causes,
            "recoveries": len(self.supervisor.events),
            "mttr_s": self.mttr_s,
            "oracles_passed": passed,
            "oracles_failed": failed,
            "oracle_reports": [str(r) for r in self.oracles],
        }


def run_chaos(runner: "ClusterBenchRunner", config: "ServeConfig",
              schedule: ChaosSchedule | None = None, *,
              supervisor: Supervisor | None = None,
              mutation: "MutationLoad | None" = None,
              telemetry: RunTelemetry | bool | None = None,
              consistency: str = "one",
              hedge_after_s: float | None = None,
              deadline_s: float | None = None,
              resilience: "ResiliencePolicy | None" = None,
              healthy_recall: float | None = None,
              recall_floor: float = 0.05) -> ChaosRunResult:
    """Inject *schedule* into a serving cluster and audit the wreckage.

    Opens the runner's replay session with every plane of the schedule
    armed, starts the supervisor (pass ``None`` for an inert,
    bit-identically passive one) and the optional per-shard mutation
    load, serves *config* through the standard server, then runs the
    in-run oracle battery.  ``config.mutation`` must be ``None`` — the
    cluster-side load goes through the ``mutation`` keyword here, not
    through the single-node path the server would start.
    """
    if config.mutation is not None:
        raise WorkloadError(
            "run_chaos drives mutation per shard; pass it as the "
            "mutation= keyword, not via ServeConfig.mutation")
    sched = schedule if schedule is not None else ChaosSchedule()
    telem = (RunTelemetry() if telemetry is True
             else (telemetry or None))
    session = runner.open_replay(
        config.search_params, telemetry=telem,
        node_faults=sched.node_faults, partitions=sched.partitions,
        grays=sched.grays, device_faults=sched.device_plans(),
        consistency=consistency, hedge_after_s=hedge_after_s,
        deadline_s=deadline_s, resilience=resilience)
    sup = (supervisor if supervisor is not None
           else Supervisor(SupervisorConfig(enabled=False)))
    if sup.telemetry is None:
        sup.telemetry = telem
    horizon = max(config.duration_s, sched.end_s)
    sup.start(session, horizon)
    states: tuple["MutationState", ...] = ()
    if mutation is not None:
        states = start_cluster_mutation(session, runner, mutation,
                                        config.duration_s,
                                        telemetry=telem)
    result = Server(_PreparedRunner(runner, session), config,
                    telemetry=telem).serve()
    replayer = session.replayer
    recall = session.recall
    if runner.ground_truth is not None and replayer.outcomes:
        recall = runner._weighted_recall(replayer.outcomes,
                                         session.cold)
    probes = runner.queries[:min(len(runner.queries), 8)]
    reports = [
        check_conservation(result),
        check_attribution(result, replayer, telemetry=telem),
        check_replica_consistency(session.cluster,
                                  session.collection_name, probes,
                                  k=runner.k),
    ]
    if healthy_recall is not None:
        reports.append(check_recall_floor(recall, healthy_recall,
                                          floor=recall_floor))
    return ChaosRunResult(result=result, schedule=sched,
                          supervisor=sup, session=session,
                          mutation=states, oracles=tuple(reports),
                          recall=recall)
