"""The chaos study: composed faults, self-healing, and the oracles.

The ``repro chaos`` command injects a composed
:class:`~repro.chaos.schedule.ChaosSchedule` — node kills, a network
partition, a gray failure, SSD fault windows, and a write-path crash —
into a replicated serving cluster (2 shards x 2 replicas + 2 spares)
under open-loop arrivals and a streaming mutation load, and audits
every run with the invariant-oracle battery:

1. **healthy baseline** — the empty schedule plus an inert supervisor:
   every oracle passes, and the run is *bit-identical* to a plain
   ``Server(ClusterBenchRunner).serve()`` with the same config — the
   whole chaos layer is provably passive when armed with nothing;
2. **unsupervised chaos** — the composed schedule with no supervisor:
   availability degrades (the kill+partition overlap blacks out both
   shards at once, so queries *fail*), and every failure is attributed
   to its fault kind across three reconciled ledgers;
3. **supervised chaos** — the same schedule with the
   :class:`~repro.chaos.supervisor.Supervisor` probing: the gray node
   and both killed nodes are detected and their replicas rebuilt onto
   spares (a vacated node later re-enters the spare pool), queries
   fail over to the rebuilt replicas, and the full oracle battery —
   conservation, attribution, replica op-log prefix consistency, the
   recall floor — holds with zero violations while MTTR is measured
   per recovery.  Run twice from scratch, the two runs are
   bit-identical (same-seed determinism for the entire chaos stack);
4. **post-chaos quiesce** — the scarred cluster (supervisor-rebuilt
   replicas in rotation) takes functional inserts/deletes and a
   compaction, then: a crash injected into its snapshot save recovers
   to committed-old or committed-new, never a hybrid; ``repair`` makes
   the store scrub clean; and the cluster answers **bit-identically**
   to a never-faulted cluster fed the same op sequence;
5. **shrinking** — a composed schedule known to violate availability
   (one fatal kill among gray/device/late-kill/partition decoys) is
   ddmin-shrunk (:mod:`repro.chaos.shrink`) to the single kill that
   matters, re-running the deterministic harness as the probe.

During the partition window the supervisor *also* declares the severed
nodes failed and finds no spare left — it degrades gracefully (counts
``no_spare``) rather than thrashing, and the partitioned replicas
return to service when the window lifts.  That is deliberate: a
supervisor cannot distinguish a partitioned node from a dead one, and
the oracles hold either way.
"""

from __future__ import annotations

import tempfile
import typing as t

import numpy as np

from repro.chaos.oracles import (check_convergence, check_crash_state,
                                 cluster_fingerprint, engine_fingerprint)
from repro.chaos.runner import ChaosRunResult, run_chaos
from repro.chaos.schedule import ChaosSchedule
from repro.chaos.shrink import shrink_schedule
from repro.chaos.supervisor import Supervisor, SupervisorConfig
from repro.cluster.cluster import Cluster
from repro.cluster.runner import ClusterBenchRunner
from repro.cluster.study import build_cluster
from repro.cluster.topology import ClusterTopology
from repro.durability import load_engine, repair, save_engine, scrub
from repro.engines.engine import IndexSpec
from repro.errors import FaultError, InjectedCrash
from repro.faults.crash import CrashInjector, CrashPlan
from repro.faults.gray import GrayFailure, GrayPlan
from repro.faults.nodes import NodeFaultPlan, NodeKill
from repro.faults.partition import PartitionPlan, PartitionWindow
from repro.faults.plan import LatencySpike, ReadError
from repro.faults.resilience import ResiliencePolicy
from repro.mutate import MutationLoad
from repro.serve.arrivals import PoissonArrivals
from repro.serve.server import ServeConfig, Server, TenantLoad

#: Search parameters of the chaos cluster (the cluster study's
#: mid-range operating point; recall-comparable, untuned).
CHAOS_PARAMS: dict[str, t.Any] = {"search_list": 50}

#: Degraded-mode recall may not drop more than this below healthy.
RECALL_FLOOR = 0.05


def _demo_schedule(duration_s: float) -> ChaosSchedule:
    """The study's composed schedule, scaled to the serving window.

    Choreographed against the 2x2(+2 spares) topology (shard 0 on
    nodes 0/1, shard 1 on nodes 2/3) so each plane's effect is
    predictable: a gray node early, SSD faults on another replica, a
    permanent kill, a transient kill, and a partition whose overlap
    with the kills blacks out *both* shards at once — the window where
    an unsupervised cluster must fail queries and a supervised one,
    having rebuilt replicas onto spares, must not.
    """
    d = duration_s
    return ChaosSchedule(
        node_faults=NodeFaultPlan.of(
            NodeKill(0, 0.30 * d, 1.05 * d),
            NodeKill(2, 0.45 * d, 0.70 * d)),
        partitions=PartitionPlan.of(
            PartitionWindow((1, 3), 0.55 * d, 0.70 * d)),
        grays=GrayPlan.of(
            GrayFailure(1, 0.05 * d, 0.20 * d, slowdown=16.0)),
        device_faults=(
            (2, LatencySpike(0.10 * d, 0.30 * d, extra_s=0.0005)),
            (2, ReadError(0.10 * d, 0.30 * d, probability=0.02,
                          stall_s=0.005)),
        ),
        crash=CrashPlan.of("save.manifest.write"),
    )


def _fingerprint(result) -> tuple:
    """Scalar fingerprint of a ServeResult for bitwise comparison."""
    return (result.arrivals, result.admitted, result.rejected,
            result.shed, result.completed, result.failed,
            result.slo_completions, result.qps, result.goodput_qps,
            result.mean_latency_s, result.p50_latency_s,
            result.p95_latency_s, result.p99_latency_s, result.recall)


def _chaos_fingerprint(run: ChaosRunResult) -> tuple:
    """The full chaos-stack fingerprint: serving + ledgers + healing."""
    replayer = run.session.replayer
    return (_fingerprint(run.result), run.recall, run.failure_causes,
            dict(sorted(replayer.ccounts.items())),
            dict(sorted(run.supervisor.counts.items())),
            tuple((e.node, e.shard, e.spare, e.detected_s, e.restored_s)
                  for e in run.supervisor.events))


def _row(run: ChaosRunResult) -> dict[str, t.Any]:
    row = run.describe()
    counts = run.session.replayer.ccounts
    row["events"] = {key: counts.get(key, 0)
                     for key in ("failovers", "partition_drops",
                                 "gray_delays", "replica_errors",
                                 "shards_missed")}
    row["supervisor"] = dict(sorted(run.supervisor.counts.items()))
    return row


def _mutate_ops(cluster: Cluster, name: str, dim: int,
                seed: int) -> None:
    """The deterministic functional op sequence of the quiesce phase."""
    rng = np.random.default_rng(seed + 101)
    extra = rng.standard_normal((96, dim)).astype(np.float32)
    cluster.insert(name, extra)
    cluster.delete(name, range(0, 80, 7))
    cluster.flush(name)
    cluster.compact(name)


def chaos_study(dataset: str = "cohere-1m", index: str = "diskann",
                duration_s: float = 0.4, seed: int = 0,
                quick: bool = False,
                progress: t.Callable[[str], None] | None = None,
                ) -> dict:
    """Run the full chaos study; see the module docstring."""
    def report(message: str) -> None:
        if progress is not None:
            progress(message)

    if quick:
        duration_s = min(duration_s, 0.25)
    k = 10
    params = dict(CHAOS_PARAMS)
    topo = ClusterTopology(n_shards=2, replicas=2, spares=2, seed=seed)
    schedule = _demo_schedule(duration_s)
    resilience = ResiliencePolicy(read_timeout_s=0.002, max_retries=2,
                                  seed=seed)
    load = MutationLoad()
    data: dict[str, t.Any] = {
        "dataset": dataset, "index": index, "duration_s": duration_s,
        "params": params, "schedule": schedule.describe(),
    }
    verdicts: dict[str, bool] = {}

    def fresh_runner() -> tuple[ClusterBenchRunner, t.Any]:
        cluster, ds = build_cluster(dataset, topo, index)
        truth = ds.ground_truth(k)
        return ClusterBenchRunner(cluster, ds.spec.name, ds.queries,
                                  ground_truth=truth, k=k,
                                  paper_n=ds.spec.paper_n), ds

    # -- 1. healthy baseline + passivity -----------------------------------
    report("healthy: empty schedule, inert supervisor")
    runner, ds = fresh_runner()
    spec = ds.spec
    calibrate = runner.run(16, params, duration_s=min(duration_s, 0.15))
    config = ServeConfig(
        policy="fifo", duration_s=duration_s, seed=seed,
        max_inflight=16, search_params=params,
        tenants=(TenantLoad("all", PoissonArrivals(
            rate_qps=0.6 * calibrate.qps)),))
    healthy = run_chaos(runner, config, ChaosSchedule(),
                        telemetry=True, resilience=resilience)
    data["healthy"] = _row(healthy)
    verdicts["healthy_oracles_pass"] = healthy.ok

    report("passivity: plain cluster serve vs empty-schedule chaos")
    plain_runner, _ = fresh_runner()
    plain = Server(plain_runner, config, telemetry=True).serve()
    verdicts["chaos_passivity_bit_identical"] = bool(
        _fingerprint(healthy.result) == _fingerprint(plain))
    data["passivity"] = {
        "chaos": _fingerprint(healthy.result),
        "plain": _fingerprint(plain),
    }
    verdicts["seeded_schedule_reproducible"] = bool(
        ChaosSchedule.seeded(4, duration_s, seed=seed + 5)
        == ChaosSchedule.seeded(4, duration_s, seed=seed + 5))

    # -- 2. unsupervised chaos ---------------------------------------------
    report("chaos: composed schedule, no supervisor")
    un_runner, _ = fresh_runner()
    unsupervised = run_chaos(
        un_runner, config, schedule, telemetry=True,
        resilience=resilience, mutation=load)
    data["unsupervised"] = _row(unsupervised)
    verdicts["unsupervised_availability_degrades"] = bool(
        unsupervised.result.failed > 0)
    verdicts["unsupervised_failures_attributed"] = bool(
        unsupervised.result.failed > 0
        and sum(unsupervised.failure_causes.values())
        == unsupervised.result.failed
        and all(r.ok for r in unsupervised.oracles
                if r.name == "failure_attribution"))

    # -- 3. supervised chaos, twice (determinism) ---------------------------
    supervised_runs: list[ChaosRunResult] = []
    for attempt in ("a", "b"):
        report(f"chaos: supervised run {attempt}")
        sup_runner, _ = fresh_runner()
        supervised_runs.append(run_chaos(
            sup_runner, config, schedule,
            supervisor=Supervisor(SupervisorConfig()),
            telemetry=True, resilience=resilience, mutation=load,
            healthy_recall=healthy.recall, recall_floor=RECALL_FLOOR))
    supervised = supervised_runs[0]
    data["supervised"] = _row(supervised)
    data["tail_amplification"] = (
        supervised.result.p99_latency_s
        / max(healthy.result.p99_latency_s, 1e-12))
    verdicts["supervised_oracles_pass"] = supervised.ok
    verdicts["supervisor_rereplicates"] = bool(
        len(supervised.supervisor.events) >= 2)
    verdicts["supervisor_measurable_mttr"] = bool(
        supervised.mttr_s is not None and supervised.mttr_s > 0)
    verdicts["supervisor_masks_failures"] = bool(
        supervised.result.failed == 0)
    verdicts["same_seed_bit_identical"] = bool(
        _chaos_fingerprint(supervised_runs[0])
        == _chaos_fingerprint(supervised_runs[1]))

    # -- 4. post-chaos quiesce: crash, repair, convergence ------------------
    report("quiesce: functional mutation + crashed save + convergence")
    chaos_cluster = supervised.session.cluster
    eng = chaos_cluster.engine_for(chaos_cluster.primary(0))
    probes = ds.queries[:16]
    with tempfile.TemporaryDirectory() as root:
        prints_old = engine_fingerprint(eng, spec.name, probes, k)
        save_engine(eng, root)
        _mutate_ops(chaos_cluster, spec.name, spec.dim, seed)
        prints_new = engine_fingerprint(eng, spec.name, probes, k)
        crashed = False
        try:
            save_engine(eng, root, crash=CrashInjector(schedule.crash))
        except InjectedCrash:
            crashed = True
        recovered = load_engine(root)
        prints_rec = engine_fingerprint(recovered, spec.name, probes, k)
        state = ("old" if prints_rec == prints_old
                 else "new" if prints_rec == prints_new else "hybrid")
        crash_report = check_crash_state(state)
        repair(root)
        scrub_ok = scrub(root).ok
    data["crash"] = {"crashed": crashed, "state": state,
                     "repaired_scrub_ok": scrub_ok,
                     "detail": crash_report.detail}
    verdicts["crash_old_or_new"] = bool(crashed and crash_report.ok
                                        and scrub_ok)

    report("quiesce: never-faulted cluster, same op sequence")
    fresh_cluster, _ = build_cluster(dataset, topo, index)
    _mutate_ops(fresh_cluster, spec.name, spec.dim, seed)
    convergence = check_convergence(
        cluster_fingerprint(chaos_cluster, spec.name, probes, k),
        cluster_fingerprint(fresh_cluster, spec.name, probes, k))
    data["convergence"] = convergence.detail
    verdicts["post_chaos_convergence_bit_identical"] = convergence.ok

    from repro.chaos.oracles import check_replica_consistency
    consistency = check_replica_consistency(chaos_cluster, spec.name,
                                            probes, k)
    data["replica_consistency"] = consistency.detail
    verdicts["replica_oplog_prefix_consistent"] = consistency.ok

    # -- 5. shrink a violating schedule to its minimal reproducer -----------
    report("shrink: ddmin over a violating composed schedule")
    rng = np.random.default_rng(seed + 77)
    mini_x = rng.standard_normal((160, 16), dtype=np.float32)
    mini_queries = rng.standard_normal((12, 16), dtype=np.float32)
    culprit = NodeKill(0, 0.005, 0.05)
    noisy = ChaosSchedule(
        node_faults=NodeFaultPlan.of(culprit, NodeKill(0, 0.2, 0.25)),
        partitions=PartitionPlan.of(PartitionWindow((0,), 0.5, 0.6)),
        grays=GrayPlan.of(GrayFailure(0, 0.0, 0.01, slowdown=2.0)),
        device_faults=((0, LatencySpike(0.0, 0.01, extra_s=0.0002)),))

    def violates(sub: ChaosSchedule) -> bool:
        cluster = Cluster(ClusterTopology(n_shards=1, seed=seed),
                          "milvus", seed=seed)
        cluster.create("mini", 16, IndexSpec.of("flat", "l2"))
        cluster.insert("mini", mini_x)
        cluster.flush("mini")
        mini = ClusterBenchRunner(cluster, "mini", mini_queries, k=5)
        try:
            result = mini.run(2, {}, duration_s=0.03,
                              node_faults=sub.node_faults,
                              partitions=sub.partitions,
                              grays=sub.grays,
                              device_faults=sub.device_plans())
        except FaultError:
            return True
        return (result.faults or {}).get("failed_queries", 0) > 0

    minimal, shrink_probes = shrink_schedule(noisy, violates)
    elements = minimal.elements()
    data["shrink"] = {
        "initial_elements": len(noisy.elements()),
        "minimal_elements": len(elements),
        "probes": shrink_probes,
        "minimal": minimal.describe(),
    }
    verdicts["shrinker_minimizes"] = bool(
        len(elements) == 1 and elements[0][0] == "kill"
        and elements[0][1] == culprit)

    data["verdicts"] = verdicts
    return data
