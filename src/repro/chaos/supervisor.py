"""The self-healing supervisor: probe, detect, re-replicate, scrub.

A :class:`Supervisor` is a simulated control-plane process running on
the coordinator.  Each probe round it pings every node currently in the
routing table over the same chaos-aware network hops queries use (so a
partition eats probes too, and a gray node answers late); a node that
misses ``fail_after`` consecutive probes is declared failed and
recovered:

1. **detect** — consecutive probe timeouts cross the failure threshold;
2. **re-replicate** — for every shard replica the failed node held,
   claim a spare from the topology's spare pool, stream the shard's
   bytes from a surviving replica's device across the interconnect onto
   the spare (the PR 7 migration path), and cut routing over via
   :meth:`repro.cluster.cluster.Cluster.move_replica` — the spare
   replays the shard's full op log, so the rebuilt replica is
   bit-identical to the survivors;
3. **scrub** — optionally save the rebuilt replica's engine through
   :mod:`repro.durability` and run ``scrub()`` over it, proving the
   rebuilt state is free of corruption before it takes reads;
4. **return to rotation** — the routing cutover makes the spare a live
   replica immediately; the vacated node, once its fault window ends,
   is a clean slate the spare pool can claim for a later recovery.

Every recovery is logged as a :class:`RecoveryEvent` carrying the
detection and restoration timestamps — their difference is the MTTR the
chaos study reports.  A disabled supervisor spawns **no** processes and
sends **no** probes, which keeps it bit-identically passive (probes
consume network-message ordinals, so even an idle probing loop would
shift every later message's jitter draw).
"""

from __future__ import annotations

import collections
import dataclasses
import tempfile
import typing as t

from repro.durability import save_engine, scrub
from repro.errors import WorkloadError

if t.TYPE_CHECKING:
    from repro.cluster.runner import ClusterReplaySession
    from repro.obs import RunTelemetry


@dataclasses.dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs: probe cadence, failure threshold, scrubbing.

    The defaults suit the chaos study's sub-second runs: probing every
    4 ms with a 0.8 ms reply timeout detects a dead or partitioned
    node in ~10 ms of simulated time, and a gray node whose slowdown
    stretches its round trip past the timeout is detected the same way
    — which is the whole point of probing through the data path.
    """

    probe_interval_s: float = 0.004
    probe_timeout_s: float = 0.0008
    #: Consecutive probe misses before a node is declared failed.
    fail_after: int = 2
    #: Scrub rebuilt replicas with repro.durability before rotation.
    scrub: bool = True
    #: A disabled supervisor is inert: no probes, no processes.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0 or self.probe_timeout_s <= 0:
            raise WorkloadError(f"bad supervisor timing: {self}")
        if self.fail_after < 1:
            raise WorkloadError(f"bad fail_after: {self.fail_after}")


@dataclasses.dataclass
class RecoveryEvent:
    """One shard replica rebuilt onto a spare after a node failure."""

    node: int          # the failed node
    shard: int
    replica: int       # replica slot within the shard's routing
    spare: int         # the node the replica was rebuilt on
    detected_s: float  # when the supervisor declared the failure
    restored_s: float  # when the rebuilt replica entered rotation
    scrub_ok: bool | None = None

    @property
    def mttr_s(self) -> float:
        """Detection-to-restoration time for this replica."""
        return self.restored_s - self.detected_s


class Supervisor:
    """Health-probes a live cluster session and heals what it finds.

    Start it with :meth:`start` after ``open_replay``; it runs as an
    ordinary simproc on the session's clock.  All decisions are driven
    by simulated observations (probe round trips), never by peeking at
    the fault plans — the supervisor genuinely *detects* failures.
    """

    def __init__(self, config: SupervisorConfig | None = None,
                 telemetry: "RunTelemetry | None" = None) -> None:
        self.config = config if config is not None else SupervisorConfig()
        self.telemetry = telemetry
        #: Chaos-layer event counts (probes, misses, recoveries, ...).
        self.counts: collections.Counter[str] = collections.Counter()
        #: Completed recoveries, in restoration order.
        self.events: list[RecoveryEvent] = []
        self._recovering: set[int] = set()
        self._claimed: set[int] = set()

    def _note(self, event: str, amount: int = 1) -> None:
        self.counts[event] += amount
        if self.telemetry is not None:
            self.telemetry.on_chaos(event, amount)

    @property
    def mttr_s(self) -> float | None:
        """Mean time to repair over all completed recoveries."""
        if not self.events:
            return None
        return sum(e.mttr_s for e in self.events) / len(self.events)

    def start(self, session: "ClusterReplaySession",
              horizon_s: float) -> None:
        """Spawn the probe loop on the session's clock (if enabled).

        ``horizon_s`` bounds the probing so the simulation drains once
        the serving window ends.  A disabled supervisor spawns nothing.
        """
        if self.config.enabled:
            session.env.process(self._probe_loop(session, horizon_s))

    # -- probing -----------------------------------------------------------

    def _probe_loop(self, session: "ClusterReplaySession",
                    horizon_s: float):
        env = session.env
        misses: collections.Counter[int] = collections.Counter()
        while env.now + self.config.probe_interval_s < horizon_s:
            yield env.timeout(self.config.probe_interval_s)
            targets = sorted({node for nodes in session.routing.values()
                              for node in nodes
                              if node not in self._recovering})
            yield env.all_of([
                env.process(self._probe(session, node, misses))
                for node in targets])
            for node in targets:
                if (misses[node] >= self.config.fail_after
                        and node not in self._recovering):
                    self._recovering.add(node)
                    env.process(self._recover(session, node))

    def _probe(self, session: "ClusterReplaySession", node: int,
               misses: collections.Counter):
        """One health probe: a round trip raced against the timeout."""
        env = session.env
        ok = [False]
        rt = env.process(self._round_trip(session, node, ok))
        yield env.race([rt, env.timeout(self.config.probe_timeout_s)])
        self._note("probes")
        if ok[0]:
            misses[node] = 0
        else:
            misses[node] += 1
            self._note("probe_misses")

    def _round_trip(self, session: "ClusterReplaySession", node: int,
                    ok: list):
        """A probe's request/reply hops through the chaos-aware path."""
        replayer = session.replayer
        coord = replayer.topology.coordinator
        delivered = yield from replayer.hop(coord, node)
        if not delivered or session.node_faults.dead(
                node, session.env.now):
            return
        delivered = yield from replayer.hop(node, coord)
        if delivered:
            ok[0] = True

    # -- recovery ----------------------------------------------------------

    def _claim_spare(self, session: "ClusterReplaySession",
                     ) -> int | None:
        """The lowest-numbered idle, live data node, or None.

        Spares are data nodes hosting no shard: the topology's standby
        pool at boot, plus any vacated node whose fault window has
        passed.  Claims are tracked so two concurrent recoveries never
        target the same node (``move_replica`` would refuse anyway).
        """
        env = session.env
        hosting = {node for nodes in session.routing.values()
                   for node in nodes}
        total = session.replayer.topology.total_nodes
        for node in range(total):
            if (node not in hosting and node not in self._claimed
                    and node not in self._recovering
                    and not session.node_faults.dead(node, env.now)):
                self._claimed.add(node)
                return node
        return None

    def _recover(self, session: "ClusterReplaySession", failed: int):
        """Rebuild every shard replica the failed node held."""
        env = session.env
        detected = env.now
        self._note("failures_detected")
        for shard in sorted(session.routing):
            nodes = session.routing[shard]
            for replica, current in enumerate(list(nodes)):
                if current != failed:
                    continue
                source = self._pick_source(session, shard, failed)
                if source is None:
                    self._note("unrecoverable")
                    continue
                spare = self._claim_spare(session)
                if spare is None:
                    self._note("no_spare")
                    continue
                yield from self._rereplicate(
                    session, shard, replica, source, spare, failed,
                    detected)
        hosting = {node for nodes in session.routing.values()
                   for node in nodes}
        if failed not in hosting:
            # Fully vacated: once its fault window passes, the node is
            # a clean slate and may be claimed as a spare later.
            self._recovering.discard(failed)

    def _pick_source(self, session: "ClusterReplaySession", shard: int,
                     failed: int) -> int | None:
        """A surviving replica to stream from: healthy first, gray last."""
        env = session.env
        survivors = [node for node in session.routing[shard]
                     if node != failed
                     and not session.node_faults.dead(node, env.now)]
        healthy = [node for node in survivors
                   if session.replayer.grays.slowdown(node, env.now)
                   == 1.0]
        if healthy:
            return healthy[0]
        return survivors[0] if survivors else None

    def _rereplicate(self, session: "ClusterReplaySession", shard: int,
                     replica: int, source: int, spare: int,
                     failed: int, detected_s: float):
        """Stream the shard onto the spare, cut over, scrub, record."""
        env = session.env
        total = session.cluster.shard_bytes(session.collection_name,
                                            shard)
        cap = session.device_spec.max_request_bytes
        offset = 0
        while offset < total:
            size = min(cap, total - offset)
            yield session.devices[source].submit([(offset, size)], "R")
            yield session.network.transfer(source, spare)
            yield session.devices[spare].submit([(offset, size)], "W")
            offset += size
        session.cluster.move_replica(shard, replica, spare)
        session.routing[shard][replica] = spare
        self._note("rereplications")
        scrub_ok: bool | None = None
        if self.config.scrub:
            scrub_ok = self._scrub(session, spare)
        self._claimed.discard(spare)
        self.events.append(RecoveryEvent(
            failed, shard, replica, spare, detected_s, env.now,
            scrub_ok))

    def _scrub(self, session: "ClusterReplaySession",
               node: int) -> bool:
        """Durability-scrub the rebuilt replica's engine state."""
        engine = session.cluster.engine_for(node)
        with tempfile.TemporaryDirectory() as root:
            save_engine(engine, root)
            report = scrub(root)
            ok = report.ok
        self._note("scrubs")
        if not ok:
            self._note("scrub_findings", len(report.corruptions))
        return ok
