"""The invariant-oracle battery checked after every chaos run.

Each oracle is a pure function over the artifacts a chaos run leaves
behind (the :class:`~repro.serve.ServeResult`, the coordinator's
ledgers, the functional cluster, telemetry) returning an
:class:`OracleReport` — named verdict plus a human-readable detail.
The battery:

* **query conservation** — the serving ledger balances exactly:
  ``arrivals == admitted + rejected`` and
  ``admitted == completed + failed + shed``, per tenant and in total.
  No query is ever lost off the books, no matter what faults fired;
* **failure attribution** — three independent ledgers agree on failed
  queries: the server's tally, the coordinator's per-fault-kind
  attribution counter, and the telemetry counters the attribution
  emitted (``cluster_failed_<kind>``).  Every failure names the fault
  kind that caused it;
* **old-or-new, never hybrid** — a crash injected into a post-chaos
  snapshot save recovers to exactly the committed-old or committed-new
  search state, bitwise, never a mixture (the durability invariant,
  re-proven under chaos);
* **post-chaos convergence** — after quiesce, functional mutation, and
  compaction, the chaos-scarred cluster (supervisor-rebuilt replicas
  included) answers bit-identically to a never-faulted cluster fed the
  same op sequence;
* **recall floor** — degraded-mode recall never falls more than the
  configured floor below the healthy run's recall;
* **replica op-log prefix consistency** — every live replica of every
  shard has applied exactly the shard's full op log (none ahead, none
  behind), and all replicas of a shard answer probes bit-identically.

Example::

    >>> report = OracleReport("demo", True, "all clear")
    >>> report.ok
    True
    >>> summarize([report])
    (1, 0)
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

if t.TYPE_CHECKING:
    from repro.cluster.cluster import Cluster
    from repro.cluster.runner import ClusterReplayer
    from repro.obs import RunTelemetry
    from repro.serve import ServeResult


@dataclasses.dataclass(frozen=True)
class OracleReport:
    """One invariant's verdict over one chaos run."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        return f"{'PASS' if self.ok else 'FAIL'} {self.name}: {self.detail}"


def summarize(reports: t.Sequence[OracleReport]) -> tuple[int, int]:
    """(passed, failed) counts over a battery of reports."""
    passed = sum(1 for r in reports if r.ok)
    return passed, len(reports) - passed


# -- query conservation -----------------------------------------------------

def check_conservation(result: "ServeResult") -> OracleReport:
    """admitted == completed + failed + shed, per tenant and total."""
    problems = []
    if result.arrivals != result.admitted + result.rejected:
        problems.append(
            f"total arrivals {result.arrivals} != admitted "
            f"{result.admitted} + rejected {result.rejected}")
    if result.admitted != (result.completed + result.failed
                           + result.shed):
        problems.append(
            f"total admitted {result.admitted} != completed "
            f"{result.completed} + failed {result.failed} + shed "
            f"{result.shed}")
    for ten in result.tenants:
        if ten.arrivals != ten.admitted + ten.rejected:
            problems.append(f"tenant {ten.name}: arrival imbalance")
        if ten.admitted != ten.completed + ten.failed + ten.shed:
            problems.append(f"tenant {ten.name}: admission imbalance")
    detail = ("; ".join(problems) if problems else
              f"{result.arrivals} arrivals fully accounted "
              f"({result.completed} completed, {result.failed} failed, "
              f"{result.shed} shed, {result.rejected} rejected)")
    return OracleReport("query_conservation", not problems, detail)


# -- failure attribution ----------------------------------------------------

def check_attribution(result: "ServeResult",
                      replayer: "ClusterReplayer",
                      telemetry: "RunTelemetry | None" = None,
                      ) -> OracleReport:
    """Server stats, coordinator ledger, telemetry counters agree."""
    causes = dict(sorted(replayer.failure_causes.items()))
    attributed = sum(causes.values())
    unanswered = sum(1 for o in replayer.outcomes
                     if not o.completed_shards)
    problems = []
    if result.failed != attributed:
        problems.append(
            f"server counted {result.failed} failures but the "
            f"coordinator attributed {attributed}")
    if unanswered != attributed:
        problems.append(
            f"per-query outcomes show {unanswered} unanswered queries "
            f"but {attributed} were attributed")
    if telemetry is not None:
        from repro.cluster.runner import FAILURE_CAUSES
        counted = {
            kind: telemetry.counters[f"cluster_failed_{kind}"].value
            for kind in FAILURE_CAUSES
            if f"cluster_failed_{kind}" in telemetry.counters}
        if counted != causes:
            problems.append(
                f"telemetry counters {counted} != coordinator "
                f"ledger {causes}")
    detail = ("; ".join(problems) if problems else
              (f"{attributed} failures reconciled across three "
               f"ledgers ({causes})" if attributed else
               "no failures; all ledgers empty"))
    return OracleReport("failure_attribution", not problems, detail)


# -- bitwise search fingerprints --------------------------------------------

def cluster_fingerprint(cluster: "Cluster", name: str,
                        queries: np.ndarray, k: int = 10,
                        ) -> list[tuple[bytes, bytes]]:
    """Bitwise (ids, dists) of a scatter-gather probe batch."""
    return [(r.ids.tobytes(), r.dists.tobytes())
            for r in cluster.search_batch(name, queries, k)]


def engine_fingerprint(engine, name: str, queries: np.ndarray,
                       k: int = 10) -> list[tuple[bytes, bytes]]:
    """Bitwise (ids, dists) of one engine's local probe batch."""
    return [(r.ids.tobytes(), r.dists.tobytes())
            for r in engine.search_batch(name, queries, k)]


def check_convergence(chaos_prints: list, fresh_prints: list,
                      ) -> OracleReport:
    """Post-chaos answers bit-identical to a never-faulted build."""
    ok = chaos_prints == fresh_prints
    mismatches = sum(1 for a, b in zip(chaos_prints, fresh_prints)
                     if a != b)
    detail = (f"{len(chaos_prints)} probes bit-identical to the fresh "
              f"build" if ok else
              f"{mismatches}/{len(chaos_prints)} probes diverge from "
              f"the fresh build")
    return OracleReport("post_chaos_convergence", ok, detail)


def check_crash_state(state: str) -> OracleReport:
    """A crashed save recovered to old or new, never a hybrid."""
    ok = state in ("old", "new")
    return OracleReport(
        "crash_old_or_new", ok,
        f"recovered search state is committed-{state}" if ok else
        f"recovered search state is {state.upper()} — torn commit")


# -- recall floor -----------------------------------------------------------

def check_recall_floor(chaos_recall: float | None,
                       healthy_recall: float | None,
                       floor: float = 0.05) -> OracleReport:
    """Degraded recall within *floor* of the healthy run's recall."""
    if chaos_recall is None or healthy_recall is None:
        return OracleReport("recall_floor", True,
                            "no ground truth; vacuously holds")
    drop = healthy_recall - chaos_recall
    ok = drop <= floor + 1e-12
    return OracleReport(
        "recall_floor", ok,
        f"recall {chaos_recall:.4f} vs healthy {healthy_recall:.4f} "
        f"(drop {max(drop, 0.0):.4f} {'<=' if ok else '>'} floor "
        f"{floor:.2f})")


# -- replica consistency ----------------------------------------------------

def check_replica_consistency(cluster: "Cluster", name: str,
                              queries: np.ndarray, k: int = 10,
                              ) -> OracleReport:
    """Every live replica applied the full op log and answers alike.

    The prefix property: replicas only ever apply the shard log in
    order, so equal applied-op counts mean equal prefixes; requiring
    the count to equal the full log length means no replica is lagging.
    The bitwise probe comparison then confirms the states really are
    interchangeable, not merely equally long.
    """
    problems = []
    for shard in sorted(cluster.routing):
        expect = cluster.oplog_len(shard)
        prints = []
        for node in cluster.routing[shard]:
            applied = cluster.applied[node]
            if applied != expect:
                problems.append(
                    f"shard {shard} replica on node {node} applied "
                    f"{applied}/{expect} ops")
            prints.append(engine_fingerprint(
                cluster.engine_for(node), name, queries, k))
        if any(p != prints[0] for p in prints[1:]):
            problems.append(
                f"shard {shard} replicas answer differently")
    detail = ("; ".join(problems) if problems else
              f"{sum(len(n) for n in cluster.routing.values())} "
              f"replicas at full op-log prefix, probes bit-identical")
    return OracleReport("replica_consistency", not problems, detail)
