"""Delta-debugging shrinker: minimize a violating chaos schedule.

Given a :class:`~repro.chaos.schedule.ChaosSchedule` whose run violates
an invariant, :func:`shrink_schedule` searches for a *minimal* fault
subset that still violates it, using Zeller's classic ddmin algorithm
over the schedule's flattened elements: repeatedly try removing chunks
(then complements of chunks) at finer and finer granularity, keeping
any reduction that still reproduces the violation.  The result is
1-minimal — removing any single remaining element makes the violation
disappear — which turns a noisy composed schedule ("kill + partition +
gray + device faults, somewhere in there") into the one or two faults
that actually matter.

Determinism carries through: sub-schedules keep their planes' seeds
(:meth:`~repro.chaos.schedule.ChaosSchedule.with_elements`), and the
violation predicate re-runs the same deterministic harness, so the
shrink is reproducible and the reported reproducer really does violate
the invariant when replayed.

Example (shrinking over a toy predicate that needs element 3)::

    >>> from repro.chaos.schedule import ChaosSchedule
    >>> from repro.faults import NodeFaultPlan, NodeKill
    >>> kills = [NodeKill(n, 0.0, 1.0) for n in range(4)]
    >>> sched = ChaosSchedule(node_faults=NodeFaultPlan.of(*kills))
    >>> def violates(sub):
    ...     return any(k.node == 3 for k in sub.node_faults.kills)
    >>> minimal, probes = shrink_schedule(sched, violates)
    >>> [(tag, e.node) for tag, e in minimal.elements()]
    [('kill', 3)]
    >>> violates(minimal)
    True
"""

from __future__ import annotations

import typing as t

from repro.chaos.schedule import ChaosElement, ChaosSchedule
from repro.errors import WorkloadError


def _chunks(elements: list, n: int) -> list[list]:
    """Split *elements* into *n* near-equal contiguous chunks."""
    size, rem = divmod(len(elements), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        out.append(elements[start:end])
        start = end
    return [c for c in out if c]


def shrink_elements(elements: list[ChaosElement],
                    violates: t.Callable[[list[ChaosElement]], bool],
                    ) -> tuple[list[ChaosElement], int]:
    """ddmin over raw elements; returns (minimal subset, probe count).

    *violates* must be deterministic and must hold for *elements*
    itself (checked).  The returned subset is 1-minimal with respect
    to *violates*.
    """
    probes = 0

    def probe(subset: list[ChaosElement]) -> bool:
        nonlocal probes
        probes += 1
        return violates(subset)

    if not probe(list(elements)):
        raise WorkloadError(
            "shrink_elements needs a violating schedule to start from")
    current = list(elements)
    n = 2
    while len(current) >= 2:
        chunks = _chunks(current, n)
        reduced = False
        # Try each chunk alone, then each complement.
        for candidate in chunks + [
                [e for c in chunks if c is not chunk for e in c]
                for chunk in chunks]:
            if len(candidate) == len(current) or not candidate:
                continue
            if probe(candidate):
                current = candidate
                n = max(2, min(n - 1, len(current)))
                reduced = True
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), 2 * n)
    return current, probes


def shrink_schedule(schedule: ChaosSchedule,
                    violates: t.Callable[[ChaosSchedule], bool],
                    ) -> tuple[ChaosSchedule, int]:
    """ddmin over a schedule; returns (minimal schedule, probe count)."""
    minimal, probes = shrink_elements(
        schedule.elements(),
        lambda subset: violates(schedule.with_elements(subset)))
    return schedule.with_elements(minimal), probes
