"""Composed chaos schedules: every fault plane on one seeded timeline.

A :class:`ChaosSchedule` bundles one instance of each fault plane the
repo knows — node kills (:class:`~repro.faults.NodeFaultPlan`), network
partitions (:class:`~repro.faults.PartitionPlan`), gray failures
(:class:`~repro.faults.GrayPlan`), per-node SSD fault windows
(:class:`~repro.faults.FaultPlan`), and a write-path crash
(:class:`~repro.faults.CrashPlan`) — into one immutable value that the
chaos harness injects *concurrently* against a serving cluster.  Every
plane is independently deterministic, so the composed schedule is too:
same schedule + same workload = bit-identical run.

The schedule is also the unit the delta-debugging shrinker
(:mod:`repro.chaos.shrink`) operates on: :meth:`elements` flattens it
into atomic fault elements and :meth:`with_elements` rebuilds a
sub-schedule from any subset, so ddmin can search the subset lattice
for a minimal invariant-violating reproducer.

Example::

    >>> sched = ChaosSchedule.seeded(n_nodes=4, duration_s=1.0, seed=7)
    >>> sched.empty
    False
    >>> sub = sched.with_elements(sched.elements()[:1])
    >>> len(sub.elements())
    1
    >>> ChaosSchedule().empty          # the passive schedule
    True
    >>> ChaosSchedule.seeded(4, 1.0, seed=7) == sched   # reproducible
    True
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkloadError
from repro.faults.crash import CrashPlan
from repro.faults.gray import GrayFailure, GrayPlan
from repro.faults.nodes import NodeFaultPlan, NodeKill
from repro.faults.partition import PartitionPlan, PartitionWindow
from repro.faults.plan import (FaultPlan, FaultWindow, LatencySpike,
                               ReadError, _unit)

#: One atomic fault in a flattened schedule: (plane tag, payload).
ChaosElement = t.Tuple[str, t.Any]


@dataclasses.dataclass(frozen=True)
class ChaosSchedule:
    """Every fault plane composed on one timeline, as pure data.

    ``device_faults`` holds ``(node id, fault window)`` pairs;
    :meth:`device_plans` groups them per node and folds in the SSD-side
    half of each gray failure (a bandwidth throttle for the gray
    window), producing the per-node :class:`~repro.faults.FaultPlan`
    map the cluster replay layer consumes.
    """

    node_faults: NodeFaultPlan = NodeFaultPlan()
    partitions: PartitionPlan = PartitionPlan()
    grays: GrayPlan = GrayPlan()
    device_faults: tuple[tuple[int, FaultWindow], ...] = ()
    crash: CrashPlan | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "device_faults",
                           tuple(self.device_faults))
        for entry in self.device_faults:
            node, window = entry
            if node < 0 or not isinstance(window, FaultWindow):
                raise WorkloadError(
                    f"bad device-fault entry: {entry!r}")

    @classmethod
    def seeded(cls, n_nodes: int, duration_s: float, *, seed: int = 0,
               kills: int = 1, outage_s: float = 0.05,
               partitions: int = 1, grays: int = 1,
               gray_slowdown: float = 8.0, device_nodes: int = 1,
               crash: bool = False) -> "ChaosSchedule":
        """Draw a composed schedule from one seed.

        Each plane samples its victims and windows through the shared
        splitmix64 unit sampler on distinct lanes, so the planes are
        decorrelated but jointly reproducible.  ``crash=True`` adds a
        crash plan at the snapshot manifest commit point — the
        crash-during-compaction case the durability oracle checks.
        """
        if n_nodes <= 0 or duration_s <= 0:
            raise WorkloadError("bad seeded-schedule parameters")
        node_faults = (NodeFaultPlan.seeded(
            n_nodes, duration_s, kills=kills, outage_s=outage_s,
            seed=seed) if kills else NodeFaultPlan(seed=seed))
        partition_plan = (PartitionPlan.seeded(
            n_nodes, duration_s, partitions=partitions,
            outage_s=outage_s, seed=seed)
            if partitions else PartitionPlan(seed=seed))
        gray_plan = (GrayPlan.seeded(
            n_nodes, duration_s, grays=grays, outage_s=2 * outage_s,
            slowdown=gray_slowdown, seed=seed)
            if grays else GrayPlan(seed=seed))
        device_faults: list[tuple[int, FaultWindow]] = []
        span = max(duration_s - outage_s, 1e-9)
        for i in range(device_nodes):
            victim = int(_unit(seed, 6, i) * n_nodes) % n_nodes
            start = _unit(seed, 7, i) * span
            device_faults.append((victim, LatencySpike(
                start, start + outage_s, extra_s=0.002)))
            device_faults.append((victim, ReadError(
                start, start + outage_s, probability=0.05,
                stall_s=0.01)))
        crash_plan = (CrashPlan.of("save.manifest.write")
                      if crash else None)
        return cls(node_faults, partition_plan, gray_plan,
                   tuple(device_faults), crash_plan, seed)

    @property
    def empty(self) -> bool:
        """True when no plane schedules anything (the passive case)."""
        return (self.node_faults.empty and self.partitions.empty
                and self.grays.empty and not self.device_faults
                and self.crash is None)

    @property
    def end_s(self) -> float:
        """When the last timed fault window closes."""
        return max(self.node_faults.end_s, self.partitions.end_s,
                   self.grays.end_s,
                   max((w.end_s for _n, w in self.device_faults),
                       default=0.0))

    def device_plans(self) -> dict[int, FaultPlan]:
        """Per-node SSD fault plans: explicit windows + gray throttles."""
        nodes = {node for node, _w in self.device_faults}
        nodes |= {gray.node for gray in self.grays.grays}
        plans: dict[int, FaultPlan] = {}
        for node in sorted(nodes):
            windows = tuple(w for n, w in self.device_faults
                            if n == node)
            windows += self.grays.device_plan(node).windows
            plans[node] = FaultPlan(windows, self.seed)
        return plans

    # -- the shrinker's view ----------------------------------------------

    def elements(self) -> list[ChaosElement]:
        """Flatten the schedule into atomic fault elements."""
        out: list[ChaosElement] = []
        out += [("kill", k) for k in self.node_faults.kills]
        out += [("partition", w) for w in self.partitions.windows]
        out += [("gray", g) for g in self.grays.grays]
        out += [("device", entry) for entry in self.device_faults]
        if self.crash is not None:
            out.append(("crash", self.crash))
        return out

    def with_elements(self,
                      elements: t.Sequence[ChaosElement],
                      ) -> "ChaosSchedule":
        """Rebuild a (sub-)schedule from a subset of elements.

        Seeds are preserved, so a sub-schedule's surviving fault
        windows behave exactly as they did in the full schedule —
        the property ddmin needs to shrink soundly.
        """
        kills: list[NodeKill] = []
        partitions: list[PartitionWindow] = []
        grays: list[GrayFailure] = []
        device: list[tuple[int, FaultWindow]] = []
        crash: CrashPlan | None = None
        for tag, payload in elements:
            if tag == "kill":
                kills.append(payload)
            elif tag == "partition":
                partitions.append(payload)
            elif tag == "gray":
                grays.append(payload)
            elif tag == "device":
                device.append(payload)
            elif tag == "crash":
                crash = payload
            else:
                raise WorkloadError(f"unknown chaos element: {tag!r}")
        return ChaosSchedule(
            NodeFaultPlan(tuple(kills), self.node_faults.seed),
            PartitionPlan(tuple(partitions), self.partitions.seed),
            GrayPlan(tuple(grays), self.grays.seed),
            tuple(device), crash, self.seed)

    def describe(self) -> dict[str, t.Any]:
        """The schedule as plain data (reports, serialization)."""
        return {
            "kills": self.node_faults.describe(),
            "partitions": self.partitions.describe(),
            "grays": self.grays.describe(),
            "device_faults": [
                dict(node=node, kind=w.kind, **dataclasses.asdict(w))
                for node, w in self.device_faults],
            "crash": (dataclasses.asdict(self.crash)
                      if self.crash is not None else None),
            "seed": self.seed,
        }
