"""The delta log: a collection's pending mutations, accounted.

Every ``insert``/``delete`` is appended to the collection's
record-framed WAL *before* it is applied (and persists through
:mod:`repro.durability.walio`, so a crash replays it); inserts are
additionally mirrored into the in-memory growing buffer that merged
searches scan brute-force.  :class:`DeltaLog` is the read-only
accounting view over that pair — what a :class:`~repro.mutate.policy.
CompactionPolicy` consumes and what the ``repro mutate`` study
reports.
"""

from __future__ import annotations

import typing as t

if t.TYPE_CHECKING:
    from repro.engines.engine import Collection
    from repro.engines.wal import WalEntry


class DeltaLog:
    """Accounting view over one collection's un-compacted mutations.

    >>> import numpy as np
    >>> from repro.api import open_engine
    >>> from repro.mutate import DeltaLog
    >>> session = open_engine("milvus")
    >>> _ = session.create("docs", dim=4, index="flat")
    >>> _ = session.insert("docs", np.eye(4, dtype=np.float32))
    >>> session.delete("docs", [1])
    1
    >>> log = DeltaLog(session.collection("docs"))
    >>> log.pending_inserts, log.pending_deletes
    (4, 1)
    >>> log.nbytes > 0
    True
    >>> session.flush("docs")      # sealing checkpoints the inserts
    >>> DeltaLog(session.collection("docs")).pending_inserts
    0
    """

    def __init__(self, collection: "Collection") -> None:
        self.collection = collection

    @property
    def pending_inserts(self) -> int:
        """Rows in the delta buffer (inserted, not yet sealed)."""
        return len(self.collection.growing)

    @property
    def pending_deletes(self) -> int:
        """Tombstones not yet dropped by a compaction."""
        return len(self.collection.tombstones)

    @property
    def nbytes(self) -> int:
        """Serialized size of the WAL entries past the last checkpoint
        — the bytes a recovery would replay."""
        return sum(entry.entry_bytes()
                   for entry in self.collection.wal.pending())

    def entries(self) -> "list[WalEntry]":
        """The un-checkpointed WAL entries, oldest first."""
        return self.collection.wal.pending()

    def __repr__(self) -> str:
        return (f"DeltaLog({self.collection.name!r}, "
                f"inserts={self.pending_inserts}, "
                f"deletes={self.pending_deletes}, nbytes={self.nbytes})")
