"""The mutability study: reads under sustained writes (``repro mutate``).

The paper benchmarks build-then-query snapshots; production vector
databases answer queries *while* ingesting.  This study measures what
streaming mutability costs on the same simulated hardware, in two
parts:

1. **Functional identity** — for each index kind, an interleaved
   insert/delete/flush history is searched through the snapshot+delta
   merge path and compared bit-for-bit (ids *and* distances) against a
   freshly built index over the same live rows; then the collection is
   compacted and compared again.  This is the tentpole invariant of
   :mod:`repro.mutate` (property-tested exhaustively in
   ``tests/mutate``); the study demonstrates it on every kind it runs.
2. **Interference** — an open-loop Poisson read load at a fraction of
   the probed saturation QPS runs twice: read-only, and concurrently
   with a :class:`~repro.mutate.MutationLoad` whose WAL flushes and
   threshold-triggered background compactions share the device and
   cores.  Reported: recall (unchanged — the merge is bit-identical),
   P99 and goodput with and without writes, and query latency inside
   vs outside the compaction windows — the interference window the
   span telemetry makes visible.

Every number is seeded and deterministic; the ``verdicts`` dict is
asserted by the CLI exit code and CI.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.data.synthetic import make_vectors
from repro.engines.engine import IndexSpec, VectorEngine
from repro.engines.profiles import get_profile
from repro.mutate.policy import CompactionPolicy
from repro.mutate.simproc import MutationLoad
from repro.serve.arrivals import PoissonArrivals
from repro.serve.result import ServeResult
from repro.serve.server import ServeConfig, Server, TenantLoad
from repro.workload.setup import make_runner

#: (kind, build params, exact search params) — parameters chosen so
#: every base-index search is exhaustive over its candidate structure,
#: making the merged-vs-rebuilt comparison exact for ties too.
IDENTITY_ROWS = 160
IDENTITY_SETUPS: tuple[tuple[str, dict, dict], ...] = (
    ("flat", {}, {}),
    ("ivf", {"nlist": 8}, {"nprobe": 8}),
    ("ivf-pq", {"nlist": 8, "pq_m": 4}, {"nprobe": 8}),
    ("hnsw", {"M": 16, "ef_construction": 200},
     {"ef_search": IDENTITY_ROWS}),
    ("diskann", {"R": 32, "L_build": 64, "alpha": 1.2},
     {"search_list": IDENTITY_ROWS}),
    ("spann", {"n_postings": 8}, {"nprobe": 8, "prune_eps": 10.0}),
)


def _identity_engine() -> VectorEngine:
    profile = get_profile("milvus")
    profile = dataclasses.replace(
        profile,
        supported_indexes=profile.supported_indexes + ("spann", "ivf-pq"))
    return VectorEngine(profile, seed=0)


def identity_check(kind: str, build: dict, search: dict, metric: str,
                   seed: int = 0) -> dict[str, t.Any]:
    """One interleaved history vs a fresh rebuild, pre and post compact.

    Returns per-kind verdict material: whether every query's (ids,
    dists) matched bit-for-bit through the merge path, and again after
    compaction.
    """
    dim = 16
    base = make_vectors(IDENTITY_ROWS - 40, dim, n_clusters=6,
                        seed=seed, latent_dim=6)
    data = np.vstack([base, base[:40]])        # duplicates: tie coverage
    rng = np.random.default_rng(seed + 1)
    queries = (data[rng.integers(0, len(data), size=8)]
               + rng.standard_normal((8, dim)).astype(np.float32) * 0.05)

    spec = IndexSpec.of(kind, metric=metric, **build)
    eng = _identity_engine()
    col = eng.create_collection("m", dim, spec)
    col.insert(data[:100])
    col.flush()
    col.insert(data[100:140])
    dead = [3, 17, 60, 99, 101, 139, 150]
    col.delete(dead)
    col.insert(data[140:])                     # unsealed delta rows
    live = sorted(set(range(len(data))) - set(dead))

    ref = _identity_engine().create_collection(
        "r", dim, IndexSpec.of(kind, metric=metric, **build))
    ref.insert(data[live])
    ref.flush()

    def matches() -> bool:
        for q in queries:
            got = col.search(q, 10, **search)
            want = ref.search(q, 10, **search)
            mapped = np.asarray([live[i] for i in want.ids],
                                dtype=np.int64)
            if not (np.array_equal(got.ids, mapped)
                    and np.array_equal(got.dists, want.dists)):
                return False
        return True

    merged_ok = matches()
    stats = col.compact()
    compacted_ok = matches() and len(col.tombstones) == 0
    return {"kind": kind, "metric": metric, "live_rows": len(live),
            "merged_identical": merged_ok,
            "compacted_identical": compacted_ok,
            "rows_dropped": stats["rows_dropped"]}


def _serve_row(result: ServeResult) -> dict[str, t.Any]:
    return {
        "offered_qps": result.offered_qps,
        "qps": result.qps,
        "goodput_qps": result.goodput_qps,
        "recall": result.recall,
        "p50_ms": result.p50_latency_s * 1e3,
        "p99_ms": result.p99_latency_s * 1e3,
        "completed": result.completed,
        "slo_misses": result.slo_misses,
    }


def _window_split(result: ServeResult) -> dict[str, t.Any]:
    """Query latencies inside vs outside the compaction windows."""
    spans = result.telemetry.spans
    stats = result.mutation
    inside = [s.latency_s for s in spans
              if stats.in_window(s.start_s, s.end_s)]
    outside = [s.latency_s for s in spans
               if not stats.in_window(s.start_s, s.end_s)]
    mean = lambda xs: float(np.mean(xs)) if xs else float("nan")  # noqa: E731
    return {"in_window_queries": len(inside),
            "out_window_queries": len(outside),
            "in_window_mean_ms": mean(inside) * 1e3,
            "out_window_mean_ms": mean(outside) * 1e3}


def mutate_study(dataset: str = "cohere-1m", duration_s: float = 0.5,
                 seed: int = 0, quick: bool = False,
                 progress: t.Callable[[str], None] | None = None) -> dict:
    """Run the full mutability study; see the module docstring."""
    def report(message: str) -> None:
        if progress is not None:
            progress(message)

    data: dict[str, t.Any] = {"dataset": dataset, "duration_s": duration_s,
                              "seed": seed}
    verdicts: dict[str, bool] = {}

    setups = IDENTITY_SETUPS[:2] if quick else IDENTITY_SETUPS
    metrics = ("l2",) if quick else ("l2", "cosine")
    rows = []
    for kind, build, search in setups:
        for metric in metrics:
            report(f"identity: {kind}/{metric}")
            rows.append(identity_check(kind, build, search, metric,
                                       seed=seed))
    data["identity"] = rows
    verdicts["merged_search_bit_identical"] = all(
        r["merged_identical"] for r in rows)
    verdicts["compaction_preserves_identity"] = all(
        r["compacted_identical"] for r in rows)

    report("interference: closed-loop saturation probe")
    runner = make_runner("milvus-diskann", dataset)
    params = {"search_list": 50}
    probe = runner.run(8, params, duration_s=min(duration_s, 0.2))
    offered = 0.6 * probe.qps
    deadline = max(20.0 * probe.p99_latency_s, 1e-3)
    data["probe"] = {"qps": probe.qps,
                     "p99_ms": probe.p99_latency_s * 1e3,
                     "offered_qps": offered,
                     "slo_deadline_ms": deadline * 1e3}

    def run(mutation: MutationLoad | None) -> ServeResult:
        config = ServeConfig(
            tenants=(TenantLoad("readers",
                                PoissonArrivals(rate_qps=offered)),),
            duration_s=duration_s, seed=seed, max_inflight=8,
            slo_deadline_s=deadline, search_params=params,
            mutation=mutation)
        return Server(runner, config, telemetry=True).serve()

    # Sized so the delta threshold trips a few times per window and
    # each compaction re-reads the whole (growing) base snapshot.
    load = MutationLoad(
        insert_qps=50_000.0, delete_qps=5_000.0, batch_rows=64,
        policy=CompactionPolicy(delta_rows=4_000,
                                tombstone_fraction=0.5),
        rebuild_cpu_per_row_s=5e-6, write_amplification=2.0)
    data["load"] = {
        "insert_qps": load.insert_qps, "delete_qps": load.delete_qps,
        "batch_rows": load.batch_rows,
        "delta_rows_threshold": load.policy.delta_rows,
        "tombstone_fraction": load.policy.tombstone_fraction}

    report("interference: read-only baseline")
    baseline = run(None)
    report("interference: sustained inserts+deletes")
    mutated = run(load)
    stats = mutated.mutation

    data["baseline"] = _serve_row(baseline)
    data["mutated"] = dict(
        _serve_row(mutated),
        inserted_rows=stats.inserted_rows,
        deleted_rows=stats.deleted_rows,
        wal_mib=stats.wal_bytes / 2**20,
        compactions=stats.compactions,
        compaction_windows_ms=[
            [start * 1e3, end * 1e3]
            for start, end in stats.compaction_windows],
        compaction_read_mib=stats.compaction_read_bytes / 2**20,
        compaction_write_mib=stats.compaction_write_bytes / 2**20)
    window = _window_split(mutated)
    data["window"] = window

    compact_hist = mutated.telemetry.stage_latency.get("compact")
    verdicts["compaction_triggered"] = stats.compactions >= 1
    verdicts["compact_stage_in_spans"] = (
        compact_hist is not None
        and compact_hist.count == stats.compactions
        and len(mutated.telemetry.compaction_spans) == stats.compactions)
    verdicts["writes_inflate_p99"] = bool(
        mutated.p99_latency_s > baseline.p99_latency_s)
    verdicts["compaction_window_visible"] = bool(
        window["in_window_queries"] > 0
        and window["out_window_queries"] > 0
        and window["in_window_mean_ms"] > window["out_window_mean_ms"])
    verdicts["recall_unchanged"] = mutated.recall == baseline.recall

    data["verdicts"] = verdicts
    return data
