"""When to compact: thresholds over the delta log and tombstones.

Compaction trades a burst of read+write I/O (and index-rebuild CPU)
for a smaller merge surface: fewer unsealed rows scanned brute-force
per query, fewer tombstones crowding the top-k escalation.  The policy
is deliberately beaver-simple — size thresholds, no feedback loops —
so compaction timing stays a pure function of the mutation history
and same-seed runs compact at identical simulated times.
"""

from __future__ import annotations

import dataclasses

from repro.errors import EngineError


@dataclasses.dataclass(frozen=True)
class CompactionPolicy:
    """Threshold trigger for merging the delta into a new snapshot.

    Compaction fires when *either* threshold is crossed:

    * ``delta_rows``: unsealed rows in the delta buffer — the
      brute-force scan cost every query pays;
    * ``tombstone_fraction``: tombstoned fraction of stored rows —
      dead weight the escalation logic must over-fetch past.

    >>> policy = CompactionPolicy(delta_rows=100,
    ...                           tombstone_fraction=0.25)
    >>> policy.should_compact(delta_rows=99, tombstones=0,
    ...                       total_rows=1000)
    False
    >>> policy.should_compact(delta_rows=100, tombstones=0,
    ...                       total_rows=1000)
    True
    >>> policy.should_compact(delta_rows=0, tombstones=300,
    ...                       total_rows=1000)
    True
    """

    #: Unsealed-row count that triggers a merge.
    delta_rows: int = 10_000
    #: Tombstoned fraction of stored rows that triggers a merge.
    tombstone_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.delta_rows < 1:
            raise EngineError(
                f"delta_rows threshold must be >= 1: {self.delta_rows}")
        if not 0.0 < self.tombstone_fraction <= 1.0:
            raise EngineError(f"tombstone_fraction must be in (0, 1]: "
                              f"{self.tombstone_fraction}")

    def should_compact(self, delta_rows: int, tombstones: int,
                       total_rows: int) -> bool:
        """Does the current (delta, tombstone) state warrant a merge?"""
        if delta_rows >= self.delta_rows:
            return True
        if total_rows > 0 and (tombstones / total_rows
                               >= self.tombstone_fraction):
            return True
        return False
