"""Mutation traffic on the simulated hardware: WAL writes + compaction.

The functional layer (:mod:`repro.mutate.compactor`,
:meth:`~repro.engines.engine.Collection.compact`) answers *what* a
merged search returns; this module answers *when* — it replays the I/O
and CPU of a sustained insert/delete stream and of threshold-triggered
background compactions on the same simulated SSD and core pool that
serve queries, so write interference and the compaction window show up
in query latencies, spans, and device counters.

Three simulated processes per serving run:

* an **ingest** process appends insert batches to a circular WAL
  region (record-framed rows, ``device.submit(..., "W")`` plus
  submission CPU), growing the delta accounted by
  :class:`MutationState`;
* a **delete** process appends tombstone records the same way (tiny
  frames — a delete never touches the snapshot);
* when the :class:`~repro.mutate.policy.CompactionPolicy` threshold is
  crossed, a **compaction** process reads the whole base snapshot plus
  the delta, spends rebuild CPU, writes the merged snapshot, and
  commits it with a manifest write — all interleaved in bounded rounds
  so queries contend with it for channels and cores throughout the
  window.  Each compaction records a span whose ``compact`` stage
  makes the interference window visible in telemetry.

Determinism: every process is a pure function of the
:class:`MutationLoad`, the collection's initial footprint, and the
simulated clock — same seed, same compaction times, same numbers.
Telemetry stays passive: recording spans and counters never changes
the schedule.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkloadError
from repro.mutate.policy import CompactionPolicy

if t.TYPE_CHECKING:
    from repro.obs import RunTelemetry
    from repro.workload.runner import BenchRunner, ReplaySession

#: Serialized size of one tombstone WAL record (frame + row id).
TOMBSTONE_BYTES = 32

#: Device requests per compaction round; bounds how long compaction
#: may monopolize the channels before queries get a turn.
COMPACTION_ROUND_REQUESTS = 8

#: Size of the manifest-swap write that commits a new snapshot.
MANIFEST_BYTES = 4096


@dataclasses.dataclass(frozen=True)
class MutationLoad:
    """A sustained insert/delete stream riding alongside queries.

    Inserts arrive at ``insert_qps`` rows/s and are flushed to the WAL
    in batches of ``batch_rows`` rows of ``row_bytes`` each; deletes
    arrive at ``delete_qps`` rows/s as tombstone records.  When the
    accumulated delta crosses ``policy``'s thresholds, a background
    compaction merges it into a new snapshot.

    >>> load = MutationLoad(insert_qps=10_000, batch_rows=50)
    >>> load.flush_interval_s
    0.005
    >>> load.flush_bytes
    25600
    >>> MutationLoad(insert_qps=-1)
    Traceback (most recent call last):
        ...
    repro.errors.WorkloadError: insert_qps must be >= 0: -1
    """

    #: Mean sustained insert rate, rows per simulated second.
    insert_qps: float = 20_000.0
    #: Mean sustained delete rate, rows per simulated second.
    delete_qps: float = 2_000.0
    #: Rows per WAL flush (one batched device write).
    batch_rows: int = 64
    #: Serialized bytes per inserted row (vector + frame + payload).
    row_bytes: int = 512
    #: Compaction trigger thresholds over the accumulated delta.
    policy: CompactionPolicy = CompactionPolicy()
    #: Index-rebuild CPU per surviving row during compaction.
    rebuild_cpu_per_row_s: float = 5e-6
    #: New-snapshot bytes per merged live byte (>1 models index
    #: construction overhead beyond the raw vectors).
    write_amplification: float = 1.0

    def __post_init__(self) -> None:
        if self.insert_qps < 0:
            raise WorkloadError(
                f"insert_qps must be >= 0: {self.insert_qps}")
        if self.delete_qps < 0:
            raise WorkloadError(
                f"delete_qps must be >= 0: {self.delete_qps}")
        if self.batch_rows < 1 or self.row_bytes < 1:
            raise WorkloadError(f"bad mutation batch shape: {self}")
        if self.rebuild_cpu_per_row_s < 0 or self.write_amplification <= 0:
            raise WorkloadError(f"bad compaction cost model: {self}")

    @property
    def flush_interval_s(self) -> float:
        """Seconds between WAL flushes at the configured insert rate."""
        return self.batch_rows / self.insert_qps

    @property
    def flush_bytes(self) -> int:
        """WAL bytes per insert flush."""
        return self.batch_rows * self.row_bytes


@dataclasses.dataclass(frozen=True)
class MutationStats:
    """Immutable roll-up of one run's mutation traffic.

    Attached to :class:`~repro.serve.ServeResult` as ``mutation`` when
    the serving config carried a :class:`MutationLoad`.
    """

    inserted_rows: int
    deleted_rows: int
    wal_flushes: int
    wal_bytes: int
    compactions: int
    #: ``(start_s, end_s)`` of each compaction on the run's timeline.
    compaction_windows: tuple[tuple[float, float], ...]
    compaction_read_bytes: int
    compaction_write_bytes: int

    def in_window(self, start_s: float, end_s: float) -> bool:
        """Does ``[start_s, end_s]`` overlap any compaction window?"""
        return any(start_s <= w_end and end_s >= w_start
                   for w_start, w_end in self.compaction_windows)


@dataclasses.dataclass
class MutationState:
    """Live accounting of the mutation processes during one run.

    ``delta_rows``/``tombstones`` are the policy inputs — they reset
    when a compaction folds the delta into the base; the ``*_rows``
    totals and the compaction aggregates only grow.
    """

    base_rows: int
    base_bytes: int
    inserted_rows: int = 0
    deleted_rows: int = 0
    wal_flushes: int = 0
    wal_bytes: int = 0
    delta_rows: int = 0
    tombstones: int = 0
    compacting: bool = False
    compaction_windows: list[tuple[float, float]] = dataclasses.field(
        default_factory=list)
    compaction_read_bytes: int = 0
    compaction_write_bytes: int = 0

    @property
    def total_rows(self) -> int:
        """Rows the policy sees: base plus unsealed delta."""
        return self.base_rows + self.delta_rows

    def stats(self) -> MutationStats:
        """Freeze the current accounting into a result-ready record."""
        return MutationStats(
            inserted_rows=self.inserted_rows,
            deleted_rows=self.deleted_rows,
            wal_flushes=self.wal_flushes,
            wal_bytes=self.wal_bytes,
            compactions=len(self.compaction_windows),
            compaction_windows=tuple(self.compaction_windows),
            compaction_read_bytes=self.compaction_read_bytes,
            compaction_write_bytes=self.compaction_write_bytes)


def snapshot_bytes(collection: t.Any) -> int:
    """The sealed footprint of *collection*: vectors + index files."""
    return sum(segment.vectors.nbytes + segment.index.disk_bytes()
               for segment in collection.segments)


def start_mutation_load(session: "ReplaySession", runner: "BenchRunner",
                        load: MutationLoad, duration_s: float,
                        telemetry: "RunTelemetry | None" = None,
                        ) -> MutationState:
    """Spawn the mutation processes on *session*'s simulated host.

    Returns the live :class:`MutationState`; it is complete once
    ``session.env.run()`` has drained.  The processes share the
    session's device and core pool with whatever query processes the
    caller spawns — that contention is the point.
    """
    env, device, cores = session.env, session.device, session.cores
    spec = runner.device_spec
    state = MutationState(base_rows=runner.collection.total_rows,
                          base_bytes=snapshot_bytes(runner.collection))
    cap = spec.max_request_bytes
    manifest_base = runner._allocator.allocate(MANIFEST_BYTES)

    def chunked(base: int, position: int, size: int, region: int,
                ) -> tuple[list[tuple[int, int]], int]:
        """Split *size* bytes at *position* into circular-log requests."""
        requests = []
        while size > 0:
            step = min(size, cap)
            if position + step > region:
                position = 0
            requests.append((base + position, step))
            position += step
            size -= step
        return requests, position

    def maybe_compact() -> None:
        if state.compacting:
            return
        if load.policy.should_compact(state.delta_rows, state.tombstones,
                                      state.total_rows):
            state.compacting = True
            env.process(compaction())

    def ingest():
        log_size = 256 * load.flush_bytes
        base = runner._allocator.allocate(log_size)
        position = 0
        while env.now < duration_s:
            yield env.timeout(load.flush_interval_s)
            requests, position = chunked(base, position, load.flush_bytes,
                                         log_size)
            yield from cores.use(len(requests) * spec.cpu_per_request_s)
            yield device.submit(requests, "W")
            state.inserted_rows += load.batch_rows
            state.delta_rows += load.batch_rows
            state.wal_flushes += 1
            state.wal_bytes += load.flush_bytes
            if telemetry is not None:
                telemetry.on_mutate("insert_rows", load.batch_rows)
                telemetry.on_mutate("wal_flushes")
                telemetry.on_mutate("wal_bytes", load.flush_bytes)
            maybe_compact()

    def deleter():
        flush_bytes = load.batch_rows * TOMBSTONE_BYTES
        log_size = 256 * flush_bytes
        base = runner._allocator.allocate(log_size)
        position = 0
        interval = load.batch_rows / load.delete_qps
        while env.now < duration_s:
            yield env.timeout(interval)
            requests, position = chunked(base, position, flush_bytes,
                                         log_size)
            yield from cores.use(len(requests) * spec.cpu_per_request_s)
            yield device.submit(requests, "W")
            state.deleted_rows += load.batch_rows
            state.tombstones += load.batch_rows
            state.wal_flushes += 1
            state.wal_bytes += flush_bytes
            if telemetry is not None:
                telemetry.on_mutate("delete_rows", load.batch_rows)
                telemetry.on_mutate("wal_flushes")
                telemetry.on_mutate("wal_bytes", flush_bytes)
            maybe_compact()

    def compaction():
        start = env.now
        span = (telemetry.begin_compaction(len(state.compaction_windows),
                                           start)
                if telemetry is not None else None)
        delta_rows, tombstones = state.delta_rows, state.tombstones
        total = max(state.total_rows, 1)
        live_fraction = max(0.0, 1.0 - tombstones / total)
        read_bytes = state.base_bytes + delta_rows * load.row_bytes
        write_bytes = max(
            int(read_bytes * live_fraction * load.write_amplification),
            cap)
        rows_kept = int(total * live_fraction)
        cpu_total = rows_kept * load.rebuild_cpu_per_row_s
        new_base = runner._allocator.allocate(write_bytes)
        read_pos = written = 0
        round_bytes = COMPACTION_ROUND_REQUESTS * cap
        # Read / rebuild / write in bounded rounds: each round holds the
        # channels for at most COMPACTION_ROUND_REQUESTS requests per
        # direction, so concurrent queries interleave with the merge
        # instead of stalling behind one monolithic batch.
        while read_pos < read_bytes:
            step = min(round_bytes, read_bytes - read_pos)
            reads, _ = chunked(0, read_pos % state.base_bytes
                               if state.base_bytes else 0, step,
                               max(state.base_bytes, step))
            before = env.now
            yield device.submit(reads, "R")
            if span is not None:
                span.add_stage("device", env.now - before)
                span.read_bytes += step
                span.read_requests += len(reads)
            cpu = cpu_total * step / read_bytes
            before = env.now
            yield from cores.use(cpu)
            if span is not None:
                span.add_stage("cpu", cpu)
                span.add_stage("cpu_wait",
                               max(env.now - before - cpu, 0.0))
            read_pos += step
            target = int(write_bytes * read_pos / read_bytes)
            if target > written:
                writes, _ = chunked(new_base, written, target - written,
                                    write_bytes)
                before = env.now
                yield device.submit(writes, "W")
                if span is not None:
                    span.add_stage("device", env.now - before)
            written = target
        # The commit point: one manifest write swaps the snapshot.
        yield device.submit([(manifest_base, MANIFEST_BYTES)], "W")
        end = env.now
        state.compaction_windows.append((start, end))
        state.compaction_read_bytes += read_bytes
        state.compaction_write_bytes += write_bytes + MANIFEST_BYTES
        state.base_rows = rows_kept
        state.base_bytes = write_bytes
        state.delta_rows -= delta_rows
        state.tombstones -= tombstones
        state.compacting = False
        if telemetry is not None:
            telemetry.on_mutate("compactions")
            telemetry.on_mutate("compaction_read_bytes", read_bytes)
            telemetry.on_mutate("compaction_write_bytes",
                                write_bytes + MANIFEST_BYTES)
            telemetry.end_compaction(span, end)
        maybe_compact()

    if load.insert_qps > 0:
        env.process(ingest())
    if load.delete_qps > 0:
        env.process(deleter())
    return state
