"""Tombstones: deletes as masks over immutable snapshots.

A delete never rewrites a sealed segment — the row id joins the
tombstone set, merged searches filter it out, and the next compaction
drops the row physically.  The set is the *live-row authority*: a row
exists iff it was inserted and is not tombstoned.

:class:`Tombstones` subclasses :class:`set`, so it pickles, compares,
and persists exactly like the plain sets collections historically
carried (the durability layer stores ``set(collection.tombstones)``
in each collection's meta record and older stores load unchanged).
"""

from __future__ import annotations

import typing as t

import numpy as np


class Tombstones(set):
    """The deleted-row-id set of one collection.

    Plain :class:`set` semantics plus vectorized filtering helpers:

    >>> dead = Tombstones([3, 7])
    >>> 3 in dead, 5 in dead
    (True, False)
    >>> dead.alive([2, 3, 4, 7]).tolist()
    [True, False, True, False]
    >>> sorted(dead.filter([2, 3, 4, 7]))
    [2, 4]
    >>> len(Tombstones())
    0
    """

    def alive(self, row_ids: t.Iterable[int]) -> np.ndarray:
        """Boolean mask over *row_ids*: True where the row survives."""
        return np.asarray([int(rid) not in self for rid in row_ids],
                          dtype=bool)

    def filter(self, row_ids: t.Iterable[int]) -> list[int]:
        """The surviving subset of *row_ids*, order preserved."""
        return [int(rid) for rid in row_ids if int(rid) not in self]
