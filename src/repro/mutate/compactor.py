"""Compaction execution: merge the delta, commit via manifest swap.

The functional merge itself lives on the collection
(:meth:`~repro.engines.engine.Collection.compact`): live rows from the
base snapshot and the delta buffer are re-sealed into fresh segments
with the same segmentation plan and seeds a fresh build would use, so
post-compaction searches are bit-identical to a from-scratch index
over the live rows.  This module wraps that merge with policy gating,
telemetry, and the **durable commit**: saving the engine afterwards
writes a new versioned file set and swaps the manifest atomically —
the single commit point the durability layer guarantees — so a crash
anywhere during the commit leaves either the pre-compaction store
(whose WAL replay restores the delta) or the post-compaction one,
never a hybrid (``tests/mutate/test_crash.py``).
"""

from __future__ import annotations

import dataclasses
import typing as t
from pathlib import Path

from repro.mutate.delta import DeltaLog
from repro.mutate.policy import CompactionPolicy

if t.TYPE_CHECKING:
    from repro.engines.engine import Collection, VectorEngine
    from repro.obs import RunTelemetry


@dataclasses.dataclass(frozen=True)
class CompactionReport:
    """What one compaction did."""

    collection: str
    rows_kept: int
    rows_dropped: int
    segments_before: int
    segments_after: int
    #: Logical snapshot+delta bytes the merge read.
    bytes_read: int
    #: Logical bytes of the new snapshot written.
    bytes_written: int
    #: Was the new snapshot committed (manifest swap) to a store path?
    committed: bool = False


def compact_collection(collection: "Collection",
                       telemetry: "RunTelemetry | None" = None,
                       ) -> CompactionReport:
    """Merge *collection*'s delta into a fresh snapshot (in memory)."""
    stats = collection.compact()
    report = CompactionReport(collection=collection.name,
                              committed=False, **stats)
    if telemetry is not None:
        telemetry.on_mutate("compactions")
        telemetry.on_mutate("compacted_rows_kept", report.rows_kept)
        telemetry.on_mutate("compacted_rows_dropped", report.rows_dropped)
    return report


def compact_engine(engine: "VectorEngine", name: str,
                   path: str | Path | None = None,
                   policy: CompactionPolicy | None = None,
                   telemetry: "RunTelemetry | None" = None,
                   ) -> CompactionReport | None:
    """Compact collection *name*, optionally gated and committed.

    With a *policy*, the merge only runs when the collection's
    :class:`~repro.mutate.delta.DeltaLog` state crosses a threshold —
    returns ``None`` otherwise.  With a *path*, the compacted engine
    is saved there afterwards: the versioned-manifest swap is the
    durable commit point of the new snapshot.

    >>> import numpy as np
    >>> from repro.api import open_engine
    >>> from repro.mutate import CompactionPolicy, compact_engine
    >>> session = open_engine("milvus")
    >>> _ = session.create("docs", dim=4, index="flat")
    >>> _ = session.insert("docs", np.eye(4, dtype=np.float32),
    ...                    flush=True)
    >>> _ = session.insert("docs", np.eye(4, dtype=np.float32))
    >>> session.delete("docs", [0, 1])
    2
    >>> lazy = CompactionPolicy(delta_rows=1000, tombstone_fraction=0.9)
    >>> compact_engine(session.engine, "docs", policy=lazy) is None
    True
    >>> report = compact_engine(session.engine, "docs")
    >>> report.rows_kept, report.rows_dropped
    (6, 2)
    >>> len(session.collection("docs").tombstones)
    0
    """
    collection = engine.collection(name)
    if policy is not None:
        log = DeltaLog(collection)
        if not policy.should_compact(log.pending_inserts,
                                     log.pending_deletes,
                                     collection.total_rows):
            return None
    report = compact_collection(collection, telemetry=telemetry)
    if path is not None:
        engine.save(path)
        report = dataclasses.replace(report, committed=True)
        if telemetry is not None:
            telemetry.on_mutate("compaction_commits")
    return report
