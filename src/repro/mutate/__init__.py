"""Streaming mutability: snapshot + delta log + background compaction.

Production vector databases interleave heavy writes with reads, while
the paper benchmarks build-then-query snapshots.  This package closes
the gap with the hybrid architecture of beaver and FreshDiskANN:

* the **base snapshot** — a collection's sealed, immutable segments;
* the **delta log** — every insert/delete appended to the
  record-framed WAL (:class:`DeltaLog` is its accounting view) and
  mirrored in the in-memory brute-force delta buffer;
* **tombstones** (:class:`Tombstones`) — deletes never touch the
  snapshot, they mask rows at merge time;
* **compaction** — when a :class:`CompactionPolicy` triggers,
  :func:`compact_engine` merges live base+delta rows into a fresh
  snapshot and commits it through the durability layer's
  versioned-manifest swap (old-or-new-never-hybrid), while
  :mod:`repro.mutate.simproc` replays the merge's reads and writes on
  the shared simulated SSD so its interference with concurrent
  queries shows up in spans and counters.

Searches merge base-index top-k with the delta buffer bit-identically
to a freshly built index over the same live rows — the invariant
``tests/mutate`` pins across every index kind.  The walkthrough lives
in ``docs/MUTABILITY.md``; the ``repro mutate`` study measures
recall/P99/goodput under sustained inserts+deletes, including the
compaction interference window.
"""

import typing as t

_EXPORTS = {
    "Tombstones": "repro.mutate.tombstones",
    "DeltaLog": "repro.mutate.delta",
    "CompactionPolicy": "repro.mutate.policy",
    "CompactionReport": "repro.mutate.compactor",
    "compact_collection": "repro.mutate.compactor",
    "compact_engine": "repro.mutate.compactor",
    "MutationLoad": "repro.mutate.simproc",
    "MutationState": "repro.mutate.simproc",
    "MutationStats": "repro.mutate.simproc",
    "start_mutation_load": "repro.mutate.simproc",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> t.Any:
    # Lazy exports (PEP 562): repro.engines imports Tombstones from the
    # submodule while repro.mutate.compactor imports repro.engines —
    # resolving attributes on demand keeps that pair acyclic.
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.mutate' has no "
                             f"attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module), name)
