"""Simulated storage substrate: device, page cache, tracer, files, fio.

Timing-only simulation of the paper's storage stack — a Samsung 990
Pro-class NVMe SSD under the Linux block layer — calibrated against the
fio measurements in Section III-A of the paper.
"""

from repro.storage.blockfile import BlockFile, ExtentAllocator, align_up
from repro.storage.device import SimSSD
from repro.storage.fio import FioJobSpec, FioResult, run_fio
from repro.storage.pagecache import CachedBlockReader, PageCache, merge_pages
from repro.storage.spec import (DeviceSpec, GiB, KiB, MiB, PAGE_SIZE,
                                samsung_990pro_4tb, samsung_sata_1tb)
from repro.storage.tracer import BlockTracer, TraceRecord

__all__ = [
    "BlockFile",
    "BlockTracer",
    "CachedBlockReader",
    "DeviceSpec",
    "ExtentAllocator",
    "FioJobSpec",
    "FioResult",
    "GiB",
    "KiB",
    "MiB",
    "PAGE_SIZE",
    "PageCache",
    "SimSSD",
    "TraceRecord",
    "align_up",
    "merge_pages",
    "run_fio",
    "samsung_990pro_4tb",
    "samsung_sata_1tb",
]
