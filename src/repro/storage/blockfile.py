"""Extent allocation: carving files out of the simulated device.

Index files (the DiskANN graph, IVF posting lists, WAL segments) need
stable device offsets so the block tracer sees a realistic address
stream.  :class:`ExtentAllocator` hands out page-aligned contiguous
extents with a first-fit free list; :class:`BlockFile` is a contiguous
file with bounds-checked positional reads and writes.
"""

from __future__ import annotations

import dataclasses

from repro.errors import StorageError
from repro.simkernel import Event
from repro.storage.device import SimSSD
from repro.storage.spec import PAGE_SIZE


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment*."""
    return (value + alignment - 1) // alignment * alignment


@dataclasses.dataclass
class _FreeExtent:
    offset: int
    size: int


class ExtentAllocator:
    """First-fit allocator of page-aligned extents on one device."""

    def __init__(self, capacity_bytes: int,
                 alignment: int = PAGE_SIZE) -> None:
        if capacity_bytes < alignment:
            raise StorageError(f"device too small: {capacity_bytes}")
        self.alignment = alignment
        self.capacity_bytes = capacity_bytes
        self._free: list[_FreeExtent] = [_FreeExtent(0, capacity_bytes)]

    def allocate(self, size: int) -> int:
        """Reserve a contiguous extent; returns its device offset."""
        if size <= 0:
            raise StorageError(f"non-positive allocation: {size}")
        size = align_up(size, self.alignment)
        for i, extent in enumerate(self._free):
            if extent.size >= size:
                offset = extent.offset
                extent.offset += size
                extent.size -= size
                if extent.size == 0:
                    del self._free[i]
                return offset
        raise StorageError(f"no free extent of {size} bytes")

    def free(self, offset: int, size: int) -> None:
        """Return an extent to the free list, merging neighbours."""
        size = align_up(size, self.alignment)
        self._free.append(_FreeExtent(offset, size))
        self._free.sort(key=lambda e: e.offset)
        merged: list[_FreeExtent] = []
        for extent in self._free:
            if merged and merged[-1].offset + merged[-1].size == extent.offset:
                merged[-1].size += extent.size
            elif merged and merged[-1].offset + merged[-1].size > extent.offset:
                raise StorageError(
                    f"double free overlapping at offset {extent.offset}")
            else:
                merged.append(extent)
        self._free = merged

    def free_bytes(self) -> int:
        """Total unallocated space."""
        return sum(extent.size for extent in self._free)


class BlockFile:
    """A contiguous file on the simulated device.

    Reads and writes are positional (pread/pwrite style) and are bounds
    checked against the file size; they return simulation events.
    """

    def __init__(self, name: str, device: SimSSD,
                 allocator: ExtentAllocator, size: int) -> None:
        self.name = name
        self.device = device
        self.size = align_up(size, allocator.alignment)
        self._allocator = allocator
        self.offset = allocator.allocate(self.size)

    def _check(self, at: int, size: int) -> None:
        if at < 0 or size <= 0 or at + size > self.size:
            raise StorageError(
                f"{self.name}: access [{at}, {at + size}) outside file "
                f"of {self.size} bytes")

    def device_offset(self, at: int) -> int:
        """Translate a file-relative offset to a device offset."""
        self._check(at, 1)
        return self.offset + at

    def read(self, at: int, size: int) -> Event:
        """Direct (uncached) read of file bytes [at, at+size)."""
        self._check(at, size)
        return self.device.read(self.offset + at, size)

    def write(self, at: int, size: int) -> Event:
        """Direct write of file bytes [at, at+size)."""
        self._check(at, size)
        return self.device.write(self.offset + at, size)

    def close(self) -> None:
        """Release the file's extent back to the allocator."""
        self._allocator.free(self.offset, self.size)
