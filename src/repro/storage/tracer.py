"""Block-layer I/O tracing.

Equivalent of the paper's bpftrace probe on the ``block_rq_issue``
tracepoint (Section III-A): every request submitted to the simulated
device is recorded with its submission timestamp, direction, offset, and
size.  The analysis helpers in :mod:`repro.trace` consume these records
to build the paper's bandwidth and request-size figures.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One ``block_rq_issue`` event."""

    timestamp: float
    op: str          # "R" or "W"
    offset: int      # bytes from device start
    size: int        # bytes


class BlockTracer:
    """Accumulates :class:`TraceRecord` entries during a run.

    Tracing can be switched off (``enabled=False``) for experiments that
    only need performance numbers, mirroring how the paper only traces
    the I/O-characterization runs.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def record(self, timestamp: float, op: str, offset: int,
               size: int) -> None:
        """Record one request issue; no-op when tracing is disabled."""
        if self.enabled:
            self._records.append(TraceRecord(timestamp, op, offset, size))

    def clear(self) -> None:
        """Drop all accumulated records (start of a new run)."""
        self._records.clear()

    @property
    def records(self) -> t.Sequence[TraceRecord]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- simple aggregations ---------------------------------------------

    def total_bytes(self, op: str | None = None) -> int:
        """Sum of request sizes, optionally filtered by direction."""
        return sum(r.size for r in self._records
                   if op is None or r.op == op)

    def window(self, start: float, end: float) -> list[TraceRecord]:
        """Records with ``start <= timestamp < end``."""
        return [r for r in self._records if start <= r.timestamp < end]
