"""Block-layer I/O tracing.

Equivalent of the paper's bpftrace probe on the ``block_rq_issue``
tracepoint (Section III-A): every request submitted to the simulated
device is recorded with its submission timestamp, direction, offset, and
size.  The analysis helpers in :mod:`repro.trace` consume these records
to build the paper's bandwidth and request-size figures.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One ``block_rq_issue`` event."""

    timestamp: float
    op: str          # "R" or "W"
    offset: int      # bytes from device start
    size: int        # bytes
    #: Fault kind(s) injected into this request ("+"-joined when several
    #: windows overlap), or None for a healthy request.  This is the
    #: per-request attribution that lets a trace reconcile against the
    #: fault plan's injection counters.
    fault: str | None = None


class BlockTracer:
    """Accumulates :class:`TraceRecord` entries during a run.

    Tracing can be switched off (``enabled=False``) for experiments that
    only need performance numbers, mirroring how the paper only traces
    the I/O-characterization runs.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def record(self, timestamp: float, op: str, offset: int,
               size: int, fault: str | None = None) -> None:
        """Record one request issue; no-op when tracing is disabled."""
        if self.enabled:
            self._records.append(TraceRecord(timestamp, op, offset, size,
                                             fault))

    def clear(self) -> None:
        """Drop all accumulated records (start of a new run)."""
        self._records.clear()

    @property
    def records(self) -> t.Sequence[TraceRecord]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- simple aggregations ---------------------------------------------

    def total_bytes(self, op: str | None = None) -> int:
        """Sum of request sizes, optionally filtered by direction."""
        return sum(r.size for r in self._records
                   if op is None or r.op == op)

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault attribution: records per fault kind.

        A record hit by several overlapping windows carries a
        "+"-joined kind string and counts once per component kind, so
        these totals reconcile with the injector's per-kind counters.
        """
        counts: dict[str, int] = {}
        for record in self._records:
            if record.fault is not None:
                for kind in record.fault.split("+"):
                    counts[kind] = counts.get(kind, 0) + 1
        return counts

    def window(self, start: float, end: float) -> list[TraceRecord]:
        """Records with ``start <= timestamp < end``."""
        return [r for r in self._records if start <= r.timestamp < end]
