"""A discrete-event-simulated NVMe/SATA block device.

The device models *timing only*: payload bytes never move through it.
Index structures keep their data in memory (they are real Python
objects); what the device reproduces is the latency, queueing, and
bandwidth consequences of the request streams those structures issue —
which is exactly what the paper characterizes.

Service model (see :mod:`repro.storage.spec` for calibration): the
device has N internal channels, each a FCFS server.  A submitted request
is placed on the earliest-free channel, occupies it for a size-dependent
transfer time, and completes after an additional pipelined media-access
latency.  Channel state is a heap of free-at times, so a batch of
requests costs O(len * log channels) and a single simulation event —
the queueing behaviour of a resource pool without its event overhead.

Every issued request is reported to the attached
:class:`~repro.storage.tracer.BlockTracer` at submission time, like the
kernel's ``block_rq_issue`` tracepoint.
"""

from __future__ import annotations

import heapq
import typing as t

from repro.errors import StorageError
from repro.simkernel import Environment, Event
from repro.storage.spec import DeviceSpec
from repro.storage.tracer import BlockTracer


class SimSSD:
    """Simulated block device attached to a simulation environment."""

    def __init__(self, env: Environment, spec: DeviceSpec,
                 tracer: BlockTracer | None = None,
                 telemetry: t.Any = None,
                 injector: t.Any = None) -> None:
        """``telemetry`` is an optional
        :class:`~repro.obs.telemetry.RunTelemetry`; every submitted batch
        is reported to it (request-size histogram, byte counters).

        ``injector`` is an optional
        :class:`~repro.faults.injector.FaultInjector`: each *read*
        request is passed through it at submission, and any returned
        effect stretches that request's occupancy and/or completion
        latency.  An injector with an empty plan never returns effects,
        leaving timing bit-identical to running without one.
        """
        self.env = env
        self.spec = spec
        self.tracer = tracer if tracer is not None else BlockTracer(False)
        self.telemetry = telemetry
        self.injector = injector
        self._channel_free = [0.0] * spec.channels
        heapq.heapify(self._channel_free)
        self._occupancy_integral = 0.0
        self.reads_issued = 0
        self.writes_issued = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- public I/O interface ---------------------------------------------

    def submit(self, requests: t.Sequence[tuple[int, int]],
               op: str, speculative: bool = False) -> Event:
        """Submit a batch of requests; fires when the *whole* batch is in.

        This is the primitive behind DiskANN's beam search: a beam of
        node reads is issued together and the search continues when the
        entire beam has landed.

        *speculative* marks look-ahead prefetch reads.  They are timed
        and traced exactly like demand reads (the block layer does not
        know the difference), but telemetry attributes them separately
        so wasted-read overhead stays visible in run reports.
        """
        if not requests:
            return self.env.timeout(0.0)
        for offset, size in requests:
            self._validate(offset, size)
        now = self.env.now
        if op == "R":
            occupancy_of = self.spec.read_occupancy
            access = self.spec.read_access_s
            self.reads_issued += len(requests)
            self.bytes_read += sum(size for _off, size in requests)
        elif op == "W":
            occupancy_of = self.spec.write_occupancy
            access = self.spec.write_access_s
            self.writes_issued += len(requests)
            self.bytes_written += sum(size for _off, size in requests)
        else:
            raise StorageError(f"unknown op {op!r}")
        if self.telemetry is not None:
            self.telemetry.on_device_submit(op, requests,
                                            speculative=speculative)
        batch_done = now
        for offset, size in requests:
            occupancy = occupancy_of(size)
            extra = 0.0
            fault_kind = None
            if self.injector is not None and op == "R":
                effect = self.injector.on_read(now, offset, size)
                if effect is not None:
                    occupancy *= effect.occupancy_multiplier
                    extra = effect.extra_s
                    fault_kind = effect.kind
            self.tracer.record(now, op, offset, size, fault=fault_kind)
            free_at = heapq.heappop(self._channel_free)
            done = max(now, free_at) + occupancy
            heapq.heappush(self._channel_free, done)
            self._occupancy_integral += occupancy
            batch_done = max(batch_done, done + access + extra)
        return self.env.timeout(batch_done - now)

    def read(self, offset: int, size: int) -> Event:
        """Submit one read; returns an event firing at completion."""
        return self.submit([(offset, size)], "R")

    def write(self, offset: int, size: int) -> Event:
        """Submit one write; returns an event firing at completion."""
        return self.submit([(offset, size)], "W")

    def read_many(self, requests: t.Sequence[tuple[int, int]]) -> Event:
        """Submit several reads in parallel; fires when all complete."""
        return self.submit(requests, "R")

    # -- validation and introspection ---------------------------------------

    def _validate(self, offset: int, size: int) -> None:
        if offset < 0 or size <= 0:
            raise StorageError(f"bad request: offset={offset} size={size}")
        if size > self.spec.max_request_bytes:
            raise StorageError(
                f"request of {size} B exceeds the block-layer limit of "
                f"{self.spec.max_request_bytes} B; split it first")
        if offset + size > self.spec.capacity_bytes:
            raise StorageError(
                f"request [{offset}, {offset + size}) beyond device end "
                f"{self.spec.capacity_bytes}")

    def utilization(self, duration: float) -> float:
        """Mean fraction of channels busy over *duration* seconds."""
        if duration <= 0:
            raise StorageError(f"non-positive duration: {duration}")
        return self._occupancy_integral / (self.spec.channels * duration)
