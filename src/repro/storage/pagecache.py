"""An LRU page cache over the simulated device.

Models the Linux page cache that sits between buffered readers (e.g. the
mmap-based engine setups) and the block device.  The paper flushes this
cache with ``sync; echo 1 > /proc/sys/vm/drop_caches`` before every run —
:meth:`PageCache.drop` is the equivalent.

Engines that open files with O_DIRECT (the DiskANN index file in Milvus)
bypass this layer entirely and talk to :class:`SimSSD` directly, which is
why their request streams reach the block tracer unmerged as 4 KiB reads
(paper observation O-15).
"""

from __future__ import annotations

import collections
import typing as t

from repro.errors import StorageError
from repro.simkernel import Environment, Event
from repro.storage.device import SimSSD
from repro.storage.spec import PAGE_SIZE


class PageCache:
    """Fixed-capacity LRU set of (device) page numbers."""

    def __init__(self, capacity_bytes: int,
                 page_size: int = PAGE_SIZE) -> None:
        if capacity_bytes < 0 or page_size <= 0:
            raise StorageError(
                f"bad cache geometry: {capacity_bytes}/{page_size}")
        self.page_size = page_size
        self.capacity_pages = capacity_bytes // page_size
        self._pages: "collections.OrderedDict[int, None]" = (
            collections.OrderedDict())
        self.hits = 0
        self.misses = 0

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def access(self, page: int) -> bool:
        """Record an access; returns True on hit.  Misses are inserted."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(page)
        return False

    def insert(self, page: int) -> None:
        """Add *page*, evicting the least recently used page if full."""
        if self.capacity_pages == 0:
            return
        if page in self._pages:
            self._pages.move_to_end(page)
            return
        while len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
        self._pages[page] = None

    def drop(self) -> None:
        """Empty the cache (``drop_caches``); counters are kept."""
        self._pages.clear()

    def hit_rate(self) -> float:
        """Fraction of accesses served from cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedBlockReader:
    """Buffered (page-cached) read path over a :class:`SimSSD`.

    Reads are split into pages; missing pages are fetched from the
    device with adjacent misses merged into single block-layer requests
    (up to the device's ``max_request_bytes``), the way the kernel's
    buffered read path does.  Cache hits cost no device time.
    """

    def __init__(self, env: Environment, device: SimSSD,
                 cache: PageCache) -> None:
        self.env = env
        self.device = device
        self.cache = cache

    def read(self, offset: int, size: int) -> Event:
        """Buffered read; returns an event firing once all pages are in."""
        requests = self._plan_requests(offset, size)
        if not requests:
            return self.env.timeout(0.0)
        return self.device.read_many(requests)

    def _plan_requests(self, offset: int,
                       size: int) -> list[tuple[int, int]]:
        if size <= 0 or offset < 0:
            raise StorageError(f"bad read: offset={offset} size={size}")
        page_size = self.cache.page_size
        first = offset // page_size
        last = (offset + size - 1) // page_size
        missing = [page for page in range(first, last + 1)
                   if not self.cache.access(page)]
        return merge_pages(missing, page_size,
                           self.device.spec.max_request_bytes)


def merge_pages(pages: t.Sequence[int], page_size: int,
                max_request_bytes: int) -> list[tuple[int, int]]:
    """Coalesce sorted page numbers into (offset, size) device requests.

    Adjacent pages merge into one request until the block-layer size cap
    is reached; gaps always split requests.
    """
    requests: list[tuple[int, int]] = []
    run_start: int | None = None
    run_len = 0
    max_pages = max(1, max_request_bytes // page_size)
    for page in pages:
        if (run_start is not None and page == run_start + run_len
                and run_len < max_pages):
            run_len += 1
            continue
        if run_start is not None:
            requests.append((run_start * page_size, run_len * page_size))
        run_start, run_len = page, 1
    if run_start is not None:
        requests.append((run_start * page_size, run_len * page_size))
    return requests
