"""An LRU page cache over the simulated device.

Models the Linux page cache that sits between buffered readers (e.g. the
mmap-based engine setups) and the block device.  The paper flushes this
cache with ``sync; echo 1 > /proc/sys/vm/drop_caches`` before every run —
:meth:`PageCache.drop` is the equivalent.

Lookup and insertion are separate operations: :meth:`PageCache.lookup`
only probes (and counts) an access, and callers insert a page once they
actually schedule its fetch.  The earlier combined access-and-insert
primitive let a reader that merely *planned* a fetch populate the cache,
so a second overlapping read in the same simulated instant counted a
phantom hit and skipped the device entirely while the data was still in
flight.  :class:`CachedBlockReader` therefore fills pages in only when
their device read completes; concurrent readers of the same cold page
each issue the fetch (the read amplification a racing buffered reader
pays before the page lands).

Engines that open files with O_DIRECT (the DiskANN index file in Milvus)
bypass this layer entirely and talk to :class:`SimSSD` directly, which is
why their request streams reach the block tracer unmerged as 4 KiB reads
(paper observation O-15).
"""

from __future__ import annotations

import typing as t

from repro.errors import StorageError
from repro.prefetch import CachePolicy, make_policy
from repro.simkernel import Environment, Event
from repro.storage.device import SimSSD
from repro.storage.spec import PAGE_SIZE

#: Telemetry hook: called with (page, hit) on every lookup.
CacheListener = t.Callable[[int, bool], None]


class PageCache:
    """Fixed-capacity set of (device) page numbers.

    The admission/eviction policy is pluggable: ``"lru"`` (default)
    models the kernel page cache's recency behaviour; ``"hotness"``
    keeps frequency-weighted residency (GoVector-style), where repeat
    accesses outrank one-touch scans and frequencies survive
    :meth:`drop` so a flushed cache refills hot-first.
    """

    def __init__(self, capacity_bytes: int,
                 page_size: int = PAGE_SIZE,
                 listener: CacheListener | None = None,
                 policy: str = "lru") -> None:
        if capacity_bytes < 0 or page_size <= 0:
            raise StorageError(
                f"bad cache geometry: {capacity_bytes}/{page_size}")
        self.page_size = page_size
        self.capacity_pages = capacity_bytes // page_size
        self.listener = listener
        self.policy = policy
        self._pages: CachePolicy = make_policy(policy, self.capacity_pages)
        self.hits = 0
        self.misses = 0

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def lookup(self, page: int) -> bool:
        """Record an access; returns True on hit.  Never inserts."""
        if page in self._pages:
            self._pages.touch(page)
            self.hits += 1
            hit = True
        else:
            self.misses += 1
            hit = False
        if self.listener is not None:
            self.listener(page, hit)
        return hit

    def insert(self, page: int) -> None:
        """Add *page*, evicting per the active policy if full."""
        if self.capacity_pages == 0:
            return
        self._pages.admit(page)

    def drop(self) -> None:
        """Empty the cache (``drop_caches``); counters are kept."""
        self._pages.clear()

    def hit_rate(self) -> float:
        """Fraction of accesses served from cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedBlockReader:
    """Buffered (page-cached) read path over a :class:`SimSSD`.

    Reads are split into pages; missing pages are fetched from the
    device with adjacent misses merged into single block-layer requests
    (up to the device's ``max_request_bytes``), the way the kernel's
    buffered read path does.  Cache hits cost no device time.  Fetched
    pages enter the cache when their device read *completes* — until
    then, an overlapping read of the same pages misses too and fetches
    them itself rather than phantom-hitting in-flight data.
    """

    def __init__(self, env: Environment, device: SimSSD,
                 cache: PageCache) -> None:
        self.env = env
        self.device = device
        self.cache = cache

    def read(self, offset: int, size: int) -> Event:
        """Buffered read; returns an event firing once all pages are in."""
        missing = self._missing_pages(offset, size)
        requests = merge_pages(missing, self.cache.page_size,
                               self.device.spec.max_request_bytes)
        if not requests:
            return self.env.timeout(0.0)
        done = self.device.read_many(requests)
        # Fill the cache only when the fetch lands, not when planned.
        done._wait(lambda _event: self._fill(missing))
        return done

    def _fill(self, pages: t.Sequence[int]) -> None:
        for page in pages:
            self.cache.insert(page)

    def _missing_pages(self, offset: int, size: int) -> list[int]:
        if size <= 0 or offset < 0:
            raise StorageError(f"bad read: offset={offset} size={size}")
        page_size = self.cache.page_size
        first = offset // page_size
        last = (offset + size - 1) // page_size
        return [page for page in range(first, last + 1)
                if not self.cache.lookup(page)]


def merge_pages(pages: t.Sequence[int], page_size: int,
                max_request_bytes: int) -> list[tuple[int, int]]:
    """Coalesce sorted page numbers into (offset, size) device requests.

    Adjacent pages merge into one request until the block-layer size cap
    is reached; gaps always split requests.
    """
    requests: list[tuple[int, int]] = []
    run_start: int | None = None
    run_len = 0
    max_pages = max(1, max_request_bytes // page_size)
    for page in pages:
        if (run_start is not None and page == run_start + run_len
                and run_len < max_pages):
            run_len += 1
            continue
        if run_start is not None:
            requests.append((run_start * page_size, run_len * page_size))
        run_start, run_len = page, 1
    if run_start is not None:
        requests.append((run_start * page_size, run_len * page_size))
    return requests
