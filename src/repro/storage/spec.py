"""Device specifications for the simulated storage devices.

The NVMe model is calibrated against the raw fio numbers the paper
reports for its Samsung 990 Pro 4 TiB (Section III-A):

* 324.3 KIOPS random 4 KiB reads on a single CPU core
  -> per-request CPU submission+completion cost of ~3.08 us;
* 1.3 MIOPS random 4 KiB reads at 64-deep concurrency
  -> 16 internal channels x 12.3 us channel occupancy per 4 KiB read;
* 7.2 GiB/s sequential 128 KiB reads
  -> ~0.45 GiB/s per-channel streaming bandwidth.

A request's latency is: queue wait + channel occupancy + access latency,
where the access latency models the NAND read itself and is pipelined
(it does not occupy the channel), so high queue depths reach the IOPS
ceiling while a queue-depth-1 reader sees ~65 us per 4 KiB read —
matching "tens of microseconds" NVMe latencies.
"""

from __future__ import annotations

import dataclasses

from repro.errors import StorageError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
PAGE_SIZE = 4 * KiB


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Timing and capacity parameters of a simulated block device."""

    name: str
    capacity_bytes: int
    channels: int
    #: Minimum channel occupancy of one read, seconds (small-read cost).
    read_seek_s: float
    #: Per-channel streaming read bandwidth, bytes/second.
    channel_read_bw: float
    #: Pipelined media read latency, seconds (added after the channel).
    read_access_s: float
    #: Minimum channel occupancy of one write, seconds.
    write_seek_s: float
    #: Per-channel streaming write bandwidth, bytes/second.
    channel_write_bw: float
    #: Pipelined program latency for writes, seconds.
    write_access_s: float
    #: Host CPU time to submit+complete one request, seconds.
    cpu_per_request_s: float
    #: Largest single request the block layer will issue, bytes.
    max_request_bytes: int = 128 * KiB

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.channels <= 0:
            raise StorageError(f"invalid device spec: {self}")

    def read_occupancy(self, size: int) -> float:
        """Channel-seconds consumed by a read of *size* bytes."""
        self._check_size(size)
        return max(self.read_seek_s, size / self.channel_read_bw)

    def write_occupancy(self, size: int) -> float:
        """Channel-seconds consumed by a write of *size* bytes."""
        self._check_size(size)
        return max(self.write_seek_s, size / self.channel_write_bw)

    def _check_size(self, size: int) -> None:
        if size <= 0:
            raise StorageError(f"non-positive request size: {size}")
        if size > self.max_request_bytes:
            raise StorageError(
                f"request of {size} B exceeds the {self.max_request_bytes} B "
                f"block-layer limit; split it before submission")

    # -- derived ceilings used in tests and docs -------------------------

    def max_read_iops(self, size: int = PAGE_SIZE) -> float:
        """Device-side random-read IOPS ceiling for *size*-byte requests."""
        return self.channels / self.read_occupancy(size)

    def max_read_bandwidth(self) -> float:
        """Streaming read bandwidth ceiling, bytes/second."""
        return self.channels * self.channel_read_bw


def samsung_990pro_4tb() -> DeviceSpec:
    """The paper's dedicated data SSD (Table I, Section III-A)."""
    return DeviceSpec(
        name="samsung-990pro-4tb",
        capacity_bytes=4 * 1024 * GiB,
        channels=16,
        read_seek_s=12.3e-6,        # 16 ch / 12.3 us = 1.30 MIOPS @ 4 KiB
        channel_read_bw=0.45 * GiB,  # 16 ch x 0.45 GiB/s = 7.2 GiB/s
        read_access_s=50e-6,
        write_seek_s=16.0e-6,
        channel_write_bw=0.42 * GiB,
        write_access_s=20e-6,
        cpu_per_request_s=3.083e-6,  # 1 core / 3.083 us = 324.4 KIOPS
    )


def samsung_sata_1tb() -> DeviceSpec:
    """A SATA-class device (the paper's OS disk); used for ablations."""
    return DeviceSpec(
        name="samsung-sata-1tb",
        capacity_bytes=1024 * GiB,
        channels=4,
        read_seek_s=42e-6,           # ~95 KIOPS @ 4 KiB
        channel_read_bw=137 * MiB,   # ~550 MB/s total
        read_access_s=90e-6,
        write_seek_s=60e-6,
        channel_write_bw=128 * MiB,
        write_access_s=40e-6,
        cpu_per_request_s=3.083e-6,
    )
