"""A fio-like microbenchmark for the simulated device.

The paper measures the raw envelope of its SSD with fio before touching
any vector database (Section III-A).  This module reproduces that
measurement against :class:`~repro.storage.device.SimSSD`, and the
calibration tests assert the three headline numbers: 324.3 KIOPS on one
core, 1.3 MIOPS at 64-deep concurrency, and 7.2 GiB/s sequential.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import WorkloadError
from repro.simkernel import Environment, Resource
from repro.storage.device import SimSSD
from repro.storage.spec import DeviceSpec, PAGE_SIZE


@dataclasses.dataclass(frozen=True)
class FioJobSpec:
    """Parameters of one fio run (all jobs share these)."""

    pattern: str = "randread"       # randread | seqread | randwrite
    block_size: int = PAGE_SIZE
    numjobs: int = 1
    iodepth: int = 1
    runtime_s: float = 1.0
    cpu_cores: int = 1
    #: Region of the device exercised, bytes (keeps offsets bounded).
    span_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.pattern not in ("randread", "seqread", "randwrite"):
            raise WorkloadError(f"unknown fio pattern: {self.pattern}")
        if min(self.numjobs, self.iodepth, self.cpu_cores) < 1:
            raise WorkloadError(f"bad fio job: {self}")


@dataclasses.dataclass(frozen=True)
class FioResult:
    """Aggregate metrics of one fio run."""

    completed: int
    iops: float
    bandwidth_bytes: float
    mean_latency_s: float
    p99_latency_s: float


def _offsets(job: FioJobSpec, job_index: int,
             rng: np.random.Generator) -> t.Iterator[int]:
    """Yield request offsets for one job."""
    bs = job.block_size
    slots = max(1, job.span_bytes // bs)
    if job.pattern == "seqread":
        base = job_index * slots // job.numjobs
        position = 0
        while True:
            yield ((base + position) % slots) * bs
            position += 1
    else:
        while True:
            yield int(rng.integers(0, slots)) * bs


def run_fio(spec: DeviceSpec, job: FioJobSpec, seed: int = 0) -> FioResult:
    """Execute a fio job set against a fresh simulated device."""
    env = Environment()
    device = SimSSD(env, spec)
    cpu = Resource(env, job.cpu_cores)
    latencies: list[float] = []
    is_write = job.pattern == "randwrite"

    def one_io(offset: int, depth: Resource):
        start = env.now
        if is_write:
            yield device.write(offset, job.block_size)
        else:
            yield device.read(offset, job.block_size)
        latencies.append(env.now - start)
        depth.release()

    def job_proc(job_index: int):
        rng = np.random.default_rng(seed + job_index)
        offsets = _offsets(job, job_index, rng)
        depth = Resource(env, job.iodepth)
        while env.now < job.runtime_s:
            yield depth.request()
            # Submission + completion handling burns host CPU; this is
            # what caps a single core at ~324 KIOPS.
            yield from cpu.use(spec.cpu_per_request_s)
            env.process(one_io(next(offsets), depth))

    for job_index in range(job.numjobs):
        env.process(job_proc(job_index))
    env.run(until=job.runtime_s)

    if not latencies:
        raise WorkloadError("fio run completed no I/O; runtime too short?")
    lat = np.asarray(latencies)
    completed = len(latencies)
    return FioResult(
        completed=completed,
        iops=completed / job.runtime_s,
        bandwidth_bytes=completed * job.block_size / job.runtime_s,
        mean_latency_s=float(lat.mean()),
        p99_latency_s=float(np.percentile(lat, 99)),
    )
