"""Exact brute-force index; the recall baseline for everything else."""

from __future__ import annotations

import numpy as np

from repro.ann.base import VectorIndex
from repro.ann.distance import (make_batch_kernel, prepare, prepare_queries,
                                prepare_query, top_k_batch)
from repro.ann.workprofile import SearchResult, WorkProfile
from repro.errors import AnnIndexError


class FlatIndex(VectorIndex):
    """Scans the entire dataset; exact but O(n) per query.

    Like every index here, cosine data is prepared to the ``l2n``
    representation, so its reported distances merge consistently with
    other indexes' results across a collection's segments.
    """

    kind = "flat"

    def __init__(self, metric: str = "l2") -> None:
        super().__init__(metric)
        self._X: np.ndarray | None = None
        self._imetric = "l2"
        self._x_sq: np.ndarray | None = None

    def build(self, X: np.ndarray) -> "FlatIndex":
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[0] == 0:
            raise AnnIndexError(f"flat index needs non-empty 2D data: {X.shape}")
        self._X, self._imetric = prepare(X, self.metric)
        self._x_sq = (np.einsum("ij,ij->i", self._X, self._X)
                      if self._imetric == "l2" else None)
        self._built = True
        return self

    def search(self, query: np.ndarray, k: int, **params) -> SearchResult:
        # A batch of one: the scan runs through the same fixed-width
        # batch kernel as search_batch, which keeps the two paths
        # bit-identical (see make_batch_kernel).
        self._require_built()
        query = prepare_query(query, self.metric)
        return self._scan(query.reshape(1, -1), k, params)[0]

    def search_batch(self, queries: np.ndarray, k: int,
                     **params) -> list[SearchResult]:
        """One matrix-matrix scan scores the whole batch at once."""
        self._require_built()
        return self._scan(prepare_queries(queries, self.metric), k, params)

    def _scan(self, prepared: np.ndarray, k: int,
              params: dict) -> list[SearchResult]:
        if params:
            raise AnnIndexError(f"flat index takes no search params: {params}")
        dists = make_batch_kernel(
            self._X, self._imetric,
            x_sq=getattr(self, "_x_sq", None))(prepared, slice(None))
        orders = top_k_batch(dists, k)
        results = []
        for row in range(prepared.shape[0]):
            work = WorkProfile()
            work.add_cpu(full_evals=self._X.shape[0])
            order = orders[row]
            results.append(SearchResult(
                ids=order, work=work,
                dists=dists[row, order].astype(np.float32)))
        return results

    def memory_bytes(self) -> int:
        self._require_built()
        return self._X.nbytes
