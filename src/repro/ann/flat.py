"""Exact brute-force index; the recall baseline for everything else."""

from __future__ import annotations

import numpy as np

from repro.ann.base import VectorIndex
from repro.ann.distance import make_kernel, prepare, prepare_query, top_k
from repro.ann.workprofile import SearchResult, WorkProfile
from repro.errors import AnnIndexError


class FlatIndex(VectorIndex):
    """Scans the entire dataset; exact but O(n) per query.

    Like every index here, cosine data is prepared to the ``l2n``
    representation, so its reported distances merge consistently with
    other indexes' results across a collection's segments.
    """

    kind = "flat"

    def __init__(self, metric: str = "l2") -> None:
        super().__init__(metric)
        self._X: np.ndarray | None = None
        self._imetric = "l2"

    def build(self, X: np.ndarray) -> "FlatIndex":
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[0] == 0:
            raise AnnIndexError(f"flat index needs non-empty 2D data: {X.shape}")
        self._X, self._imetric = prepare(X, self.metric)
        self._built = True
        return self

    def search(self, query: np.ndarray, k: int, **params) -> SearchResult:
        self._require_built()
        if params:
            raise AnnIndexError(f"flat index takes no search params: {params}")
        query = prepare_query(query, self.metric)
        dists = make_kernel(self._X, self._imetric)(query, slice(None))
        work = WorkProfile()
        work.add_cpu(full_evals=self._X.shape[0])
        order = top_k(dists, k).astype(np.int64)
        return SearchResult(ids=order, work=work,
                            dists=dists[order].astype(np.float32))

    def memory_bytes(self) -> int:
        self._require_built()
        return self._X.nbytes
