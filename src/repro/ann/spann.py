"""SPANN: the cluster-based storage index (Chen et al., paper ref [29]).

The paper's background section contrasts two storage-based index
families: graph-based (DiskANN, which it measures) and cluster-based
(SPANN, which none of its databases support).  Implementing SPANN makes
the comparison the paper cites from [30] reproducible here:

* vectors are partitioned into many *posting lists*; each list is laid
  out contiguously on the SSD, matching its access granularity;
* the centroids stay in memory under an HNSW index for fast candidate
  selection (paper Section II-B: "the centroids can be further managed
  by a graph index");
* **boundary replication**: a vector joins every cluster whose centroid
  is within ``(1 + closure_eps)`` of its nearest centroid, up to
  ``max_replicas`` (8 in SPANN) — higher recall at the price of space
  amplification;
* **query-time pruning**: posting lists whose centroid is farther than
  ``(1 + prune_eps)`` of the closest selected centroid are skipped.

A query costs one centroid search (memory) plus a *single parallel
round* of posting-list reads — large sequential requests instead of
DiskANN's dependent chain of 4 KiB reads.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import VectorIndex
from repro.ann.distance import make_kernel, prepare, prepare_query, top_k
from repro.ann.hnsw import HNSWIndex
from repro.ann.kmeans import kmeans
from repro.ann.workprofile import SearchResult, WorkProfile
from repro.errors import AnnIndexError
from repro.prefetch import CachePolicy, make_policy
from repro.storage.spec import PAGE_SIZE


class SPANNIndex(VectorIndex):
    """Centroids in memory (HNSW), replicated posting lists on disk."""

    kind = "spann"
    storage_based = True

    def __init__(self, metric: str = "l2", n_postings: int | None = None,
                 max_replicas: int = 8, closure_eps: float = 0.15,
                 storage_dim: int | None = None,
                 centroid_ef_construction: int = 100,
                 list_cache_bytes: int = 0, cache_policy: str = "hotness",
                 seed: int = 0) -> None:
        """
        Args:
            n_postings: number of posting lists (default n/64, min 8).
            max_replicas: replication cap for boundary vectors (SPANN
                replicates up to 8x, paper Section II-B).
            closure_eps: a vector replicates into clusters whose
                centroid distance is within (1+eps) of its nearest.
            storage_dim: nominal on-disk dimensionality.
            list_cache_bytes: memory budget for caching hot posting
                lists (0 disables); probes of cached cells cost no I/O.
            cache_policy: admission/eviction policy of the list cache
                ("hotness" keeps the most-probed cells resident).
        """
        if max_replicas < 1 or closure_eps < 0:
            raise AnnIndexError(
                f"bad SPANN params: replicas={max_replicas} "
                f"eps={closure_eps}")
        if list_cache_bytes < 0:
            raise AnnIndexError(
                f"negative list cache budget: {list_cache_bytes}")
        super().__init__(metric)
        self.n_postings = n_postings
        self.max_replicas = max_replicas
        self.closure_eps = closure_eps
        self.storage_dim = storage_dim
        self.centroid_ef_construction = centroid_ef_construction
        self.list_cache_bytes = list_cache_bytes
        self.cache_policy = cache_policy
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.centroid_index: HNSWIndex | None = None
        self._X: np.ndarray | None = None
        self._imetric = "l2"
        self._lists: list[np.ndarray] = []
        self._extents: list[tuple[int, int]] = []
        self._disk_bytes = 0
        self._replicas = 0
        self._list_cache: CachePolicy = make_policy("lru", 0)
        self.list_hits = 0
        self.list_misses = 0

    # -- construction -----------------------------------------------------

    def build(self, X: np.ndarray) -> "SPANNIndex":
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[0] == 0:
            raise AnnIndexError(f"SPANN needs non-empty 2D data: {X.shape}")
        self._X, self._imetric = prepare(X, self.metric)
        n, dim = self._X.shape
        if self.storage_dim is None:
            self.storage_dim = dim
        if self.n_postings is None:
            self.n_postings = max(8, n // 64)
        if self.n_postings > n:
            raise AnnIndexError(
                f"n_postings {self.n_postings} exceeds dataset size {n}")

        rng = np.random.default_rng(self.seed)
        sample = self._X if n <= 20_000 else (
            self._X[rng.choice(n, 20_000, replace=False)])
        self.centroids, _ = kmeans(sample, self.n_postings, seed=self.seed)
        self.centroid_index = HNSWIndex(
            metric=self._imetric if self._imetric != "l2n" else "l2",
            M=8, ef_construction=self.centroid_ef_construction,
            seed=self.seed).build(self._prepare_centroids())

        members: list[list[int]] = [[] for _ in range(self.n_postings)]
        kernel = make_kernel(self.centroids, "l2")
        replicas = 0
        for row in range(n):
            dists = kernel(self._X[row], slice(None))
            order = top_k(dists, self.max_replicas)
            nearest = float(dists[order[0]])
            threshold = (1.0 + self.closure_eps) ** 2 * max(nearest, 1e-12)
            for cell in order:
                if float(dists[cell]) <= threshold or cell == order[0]:
                    members[int(cell)].append(row)
                    replicas += 1
        self._replicas = replicas

        record_bytes = 8 + 4 * self.storage_dim
        offset = 0
        for cell in range(self.n_postings):
            ids = np.asarray(members[cell], dtype=np.int64)
            self._lists.append(ids)
            size = max(PAGE_SIZE,
                       -(-len(ids) * record_bytes // PAGE_SIZE) * PAGE_SIZE)
            self._extents.append((offset, size))
            offset += size
        self._disk_bytes = offset
        self._build_list_cache()
        self._built = True
        return self

    def _build_list_cache(self) -> None:
        """Size the hot posting-list cache in whole-extent entries.

        Extents vary in size, so the byte budget is converted to an
        entry capacity using the mean extent size — an approximation
        that keeps the policy layer byte-agnostic.
        """
        if self.list_cache_bytes <= 0 or not self._extents:
            self._list_cache = make_policy("lru", 0)
            self._mean_extent = 0
            return
        self._mean_extent = max(PAGE_SIZE,
                                self._disk_bytes // len(self._extents))
        capacity = self.list_cache_bytes // self._mean_extent
        self._list_cache = make_policy(self.cache_policy, capacity)

    def reset_dynamic_cache(self) -> None:
        """Drop the posting-list cache (pre-run ``drop_caches``)."""
        self._list_cache.clear()

    def __setstate__(self, state: dict) -> None:
        # Indexes pickled before the list cache existed get a disabled
        # one (the old behaviour: every probe reads its extent).
        self.__dict__.update(state)
        if "_list_cache" not in state:
            self.list_cache_bytes = 0
            self.cache_policy = "hotness"
            self._list_cache = make_policy("lru", 0)
            self._mean_extent = 0
            self.list_hits = 0
            self.list_misses = 0

    def cache_stats(self) -> dict[str, int]:
        """Cumulative posting-list cache counters (telemetry)."""
        return {"list_hits": self.list_hits,
                "misses": self.list_misses}

    def _prepare_centroids(self) -> np.ndarray:
        # Centroids of l2n-prepared data are not unit vectors; index
        # them under plain L2, which ranks identically for our use.
        return np.ascontiguousarray(self.centroids, dtype=np.float32)

    # -- search -----------------------------------------------------------

    @staticmethod
    def degrade_search_params(params: dict, factor: float,
                              k: int) -> dict:
        """Shrunken search params for graceful degradation.

        Probing fewer posting lists (``nprobe`` scaled by *factor*,
        floored at 1) is SPANN's lever for shedding device load under
        pressure: each dropped list is one fewer storage read round.
        ``prune_eps`` and cache knobs pass through unchanged.
        """
        out = dict(params)
        if "nprobe" in out:
            out["nprobe"] = max(1, int(out["nprobe"] * factor))
        return out

    def search(self, query: np.ndarray, k: int, *, nprobe: int = 8,
               prune_eps: float = 0.3) -> SearchResult:
        """Top-k via nprobe posting lists (after distance pruning)."""
        self._require_built()
        if nprobe < 1:
            raise AnnIndexError(f"nprobe must be >= 1: {nprobe}")
        nprobe = min(nprobe, self.n_postings)
        query = prepare_query(query, self.metric)
        work = WorkProfile()

        # Centroid candidates via the in-memory HNSW (paper Fig. 1a's
        # graph-managed centroids).
        centroid_hits = self.centroid_index.search(
            query, nprobe, ef_search=max(2 * nprobe, 16))
        work.steps.extend(centroid_hits.work.steps)
        selected = centroid_hits.ids
        dists = centroid_hits.dists
        # Query-time pruning against the closest selected centroid.
        closest = float(dists[0])
        keep = [int(cell) for cell, d in zip(selected, dists)
                if float(d) <= (1.0 + prune_eps) ** 2 * max(closest, 1e-12)]

        requests, hits = [], 0
        for cell in keep:
            if cell in self._list_cache:
                self._list_cache.touch(cell)
                self.list_hits += 1
                hits += 1
            else:
                self.list_misses += 1
                requests.append(self._extents[cell])
                self._list_cache.admit(cell)
        work.add_io(requests, cache_hits=hits)

        nonempty = [cell for cell in keep if len(self._lists[cell])]
        if not nonempty:
            return SearchResult(ids=np.empty(0, dtype=np.int64), work=work,
                                dists=np.empty(0, dtype=np.float32))
        # One contiguous gather scores every surviving posting list in a
        # single kernel call (the lists were concatenated on disk anyway).
        all_ids = np.concatenate([self._lists[cell] for cell in nonempty])
        all_dists = make_kernel(self._X, self._imetric)(query, all_ids)
        work.add_cpu(full_evals=len(all_ids))
        # Replicas deduplicate to their best distance: sort by (id, dist)
        # and keep the first row of each id run.
        order = np.lexsort((all_dists, all_ids))
        sorted_ids = all_ids[order]
        sorted_dists = all_dists[order]
        first = np.ones(len(sorted_ids), dtype=bool)
        first[1:] = sorted_ids[1:] != sorted_ids[:-1]
        uniq_ids = sorted_ids[first]
        uniq_dists = sorted_dists[first]
        sel = top_k(uniq_dists, k)
        return SearchResult(ids=uniq_ids[sel], work=work,
                            dists=uniq_dists[sel].astype(np.float32))

    # -- footprints --------------------------------------------------------

    def memory_bytes(self) -> int:
        self._require_built()
        return int(self.centroids.nbytes
                   + self.centroid_index.memory_bytes()
                   + len(self._list_cache) * self._mean_extent)

    def disk_bytes(self) -> int:
        self._require_built()
        return self._disk_bytes

    def space_amplification(self) -> float:
        """On-disk replicas per vector (SPANN's cost, paper II-B)."""
        self._require_built()
        return self._replicas / self._X.shape[0]
