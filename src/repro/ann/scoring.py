"""Kind-matched scoring: reproduce an index's distance bits off-index.

Every sealed index reports distances through one of three numeric
paths, and the three produce different last-ulp bits for the same row:

* **batch-formula kinds** (``flat``, ``ivf``): the fixed-width GEMM
  batch kernel — for ``l2`` the expansion
  ``|x|^2 + |q|^2 - 2<x, q>`` (:func:`~repro.ann.distance.make_batch_kernel`);
* **gather kinds** (``hnsw``, ``diskann``, ``spann``, ``hnsw-mmap``):
  the frontier gather kernel — for ``l2`` the direct
  ``sum((x - q)^2)`` (:func:`~repro.ann.distance.make_kernel`);
* **ADC kinds** (``ivf-pq``): per-subspace table lookups summed over
  subspaces (:meth:`~repro.ann.pq.ProductQuantizer.adc_distances`).

(For ``cosine`` data every kind first normalizes to the ``l2n``
representation, where the batch and gather kernels agree bitwise.)

The streaming-mutability layer needs a fourth party — the unsealed
delta buffer — to score rows *bit-identically to what the collection's
sealed index kind would report for them*, so that a merged
base+delta search equals a freshly built index over the same rows not
just in ranking but in every returned float (see
``docs/MUTABILITY.md``).  :func:`delta_kernel` builds such a scorer.

ADC distances are content-only in the exact-reconstruction regime
(training rows <= codewords per subspace, where each vector decodes to
itself): a quantizer trained on any superset or subset containing a row
reports the same bits for it.  That is the property the cluster layer's
shard-identity tests already rely on, and what lets a delta-trained
quantizer here match a fresh build's full-trained one.

>>> import numpy as np
>>> from repro.ann.distance import prepare_queries
>>> from repro.ann.flat import FlatIndex
>>> rng = np.random.default_rng(0)
>>> X = rng.standard_normal((32, 8), dtype=np.float32)
>>> q = rng.standard_normal((1, 8), dtype=np.float32)
>>> sealed = FlatIndex(metric="cosine").build(X).search(q[0], k=32)
>>> score = delta_kernel("flat", "cosine", X)
>>> dists = score(prepare_queries(q, "cosine"))[0]
>>> bool(np.array_equal(np.sort(dists), sealed.dists))
True
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.ann.distance import make_batch_kernel, make_kernel, prepare
from repro.ann.pq import ProductQuantizer
from repro.errors import AnnIndexError

#: Kinds whose reported distances come from the frontier gather kernel.
GATHER_KINDS = ("hnsw", "diskann", "spann", "hnsw-mmap")

#: Kinds whose reported distances come from the batched scan kernel.
BATCH_KINDS = ("flat", "ivf")

#: Kinds reporting asymmetric-distance (PQ table lookup) values.
ADC_KINDS = ("ivf-pq",)


def delta_kernel(kind: str | None, metric: str, X: np.ndarray, *,
                 pq_m: int | None = None,
                 seed: int = 0) -> t.Callable[[np.ndarray], np.ndarray]:
    """A scorer over rows of *X* matching *kind*'s distance bits.

    Returns ``score(Q) -> (B, n)`` float32 distances, where *Q* is a
    block of **prepared** queries (:func:`~repro.ann.distance.
    prepare_queries` with the same *metric*).  Row ``j`` of the result
    carries, bit for bit, the distance a sealed index of *kind* built
    over a dataset containing ``X[j]`` would report for that row.

    ``kind=None`` (or an unknown kind, e.g. ``hnsw-sq``, whose sealed
    distances depend on a quantizer trained over the *whole* dataset)
    falls back to the exact gather kernel — correct ranking, no
    bit-matching promise.

    For ``ivf-pq``, *pq_m* is the sealed index's subspace count
    (defaults to the engine's ``dim // 4`` rule) and the quantizer is
    trained on *X* itself — in the exact-reconstruction regime that
    yields the same bits as the fresh build's full-trained quantizer.
    """
    if X.ndim != 2 or X.shape[0] == 0:
        raise AnnIndexError(f"delta kernel needs non-empty 2D data: "
                            f"{X.shape}")
    Xp, imetric = prepare(X, metric)
    if kind in ADC_KINDS:
        m = pq_m if pq_m is not None else Xp.shape[1] // 4
        quantizer = ProductQuantizer(Xp.shape[1], m=m, seed=seed).train(Xp)
        codes = quantizer.encode(Xp)

        def score(Q: np.ndarray) -> np.ndarray:
            tables = quantizer.adc_tables(Q)
            return ProductQuantizer.adc_distances_batch(tables, codes)
        return score
    if kind in BATCH_KINDS:
        batch = make_batch_kernel(Xp, imetric)

        def score(Q: np.ndarray) -> np.ndarray:
            return batch(Q, slice(None))
        return score
    # Gather kinds, and the exact fallback for None/unknown kinds.
    kernel = make_kernel(Xp, imetric)
    ids = np.arange(Xp.shape[0], dtype=np.int64)

    def score(Q: np.ndarray) -> np.ndarray:
        out = np.empty((Q.shape[0], Xp.shape[0]), dtype=np.float32)
        for row in range(Q.shape[0]):
            out[row] = kernel(Q[row], ids)
        return out
    return score
