"""Work accounting for index searches.

Every index search in this library does the *real* algorithmic work and,
alongside the result ids, returns a :class:`WorkProfile` describing what
that work was: how many distance evaluations of which kind, and — for
storage-based indexes — the exact block reads issued, batched into the
dependent rounds the algorithm actually performs (a DiskANN beam is one
:class:`IoStep`; the next beam depends on its results).

The engine layer replays these profiles on the discrete-event simulator
to obtain latency, throughput, CPU, and I/O traces.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass(frozen=True)
class CpuStep:
    """A stretch of pure computation between I/O rounds.

    ``full_evals`` are full-precision distance evaluations, ``pq_evals``
    are table-lookup (product-quantized) evaluations, ``table_builds``
    counts ADC table constructions (one per query for PQ indexes).
    """

    full_evals: int = 0
    pq_evals: int = 0
    table_builds: int = 0


@dataclasses.dataclass(frozen=True)
class IoStep:
    """One dependent round of parallel block reads.

    *requests* hold (offset, size) pairs relative to the index file;
    *cache_hits* counts node fetches served from the index's own node
    cache (they consume no device time but are part of the algorithm's
    footprint accounting).
    """

    requests: tuple[tuple[int, int], ...]
    cache_hits: int = 0


Step = t.Union[CpuStep, IoStep]


@dataclasses.dataclass
class WorkProfile:
    """The full work trace of a single-query search."""

    steps: list[Step] = dataclasses.field(default_factory=list)

    def add_cpu(self, full_evals: int = 0, pq_evals: int = 0,
                table_builds: int = 0) -> None:
        """Append computation, merging with a trailing CPU step."""
        if self.steps and isinstance(self.steps[-1], CpuStep):
            last = self.steps[-1]
            self.steps[-1] = CpuStep(
                last.full_evals + full_evals,
                last.pq_evals + pq_evals,
                last.table_builds + table_builds)
        else:
            self.steps.append(CpuStep(full_evals, pq_evals, table_builds))

    def add_io(self, requests: t.Sequence[tuple[int, int]],
               cache_hits: int = 0) -> None:
        """Append one dependent round of parallel reads."""
        self.steps.append(IoStep(tuple(requests), cache_hits))

    # -- aggregate views used by tests and analysis ----------------------

    @property
    def full_evals(self) -> int:
        return sum(s.full_evals for s in self.steps
                   if isinstance(s, CpuStep))

    @property
    def pq_evals(self) -> int:
        return sum(s.pq_evals for s in self.steps if isinstance(s, CpuStep))

    @property
    def table_builds(self) -> int:
        return sum(s.table_builds for s in self.steps
                   if isinstance(s, CpuStep))

    @property
    def io_rounds(self) -> int:
        return sum(1 for s in self.steps
                   if isinstance(s, IoStep) and s.requests)

    @property
    def io_requests(self) -> int:
        return sum(len(s.requests) for s in self.steps
                   if isinstance(s, IoStep))

    @property
    def io_bytes(self) -> int:
        return sum(size for s in self.steps if isinstance(s, IoStep)
                   for _off, size in s.requests)

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.steps
                   if isinstance(s, IoStep))


@dataclasses.dataclass
class SearchResult:
    """Ids returned by a search, their distances, and the work done.

    ``dists`` are in the index's internal metric units — comparable
    across results of indexes built with the same metric, which is what
    cross-segment merging needs.
    """

    ids: t.Any                    # np.ndarray of int64
    work: WorkProfile
    dists: t.Any = None           # np.ndarray of float32, or None
