"""Work accounting for index searches.

Every index search in this library does the *real* algorithmic work and,
alongside the result ids, returns a :class:`WorkProfile` describing what
that work was: how many distance evaluations of which kind, and — for
storage-based indexes — the exact block reads issued, batched into the
dependent rounds the algorithm actually performs (a DiskANN beam is one
:class:`IoStep`; the next beam depends on its results).

The engine layer replays these profiles on the discrete-event simulator
to obtain latency, throughput, CPU, and I/O traces.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass(frozen=True)
class CpuStep:
    """A stretch of pure computation between I/O rounds.

    ``full_evals`` are full-precision distance evaluations, ``pq_evals``
    are table-lookup (product-quantized) evaluations, ``table_builds``
    counts ADC table constructions (one per query for PQ indexes).
    """

    full_evals: int = 0
    pq_evals: int = 0
    table_builds: int = 0


@dataclasses.dataclass(frozen=True)
class IoStep:
    """One dependent round of parallel block reads.

    *requests* hold (offset, size) pairs relative to the index file;
    *cache_hits* counts node fetches served from the index's own node
    cache (they consume no device time but are part of the algorithm's
    footprint accounting).  *prefetch_hits* counts fetches served from
    the speculative prefetch buffer: they issue no demand read, but the
    round must first **join** the in-flight speculative reads (the
    runner waits on their events before this round's compute).
    """

    requests: tuple[tuple[int, int], ...]
    cache_hits: int = 0
    prefetch_hits: int = 0


@dataclasses.dataclass(frozen=True)
class PrefetchStep:
    """Speculative reads issued without blocking the traversal.

    With ``join`` False the runner submits *requests* to the device and
    continues immediately; the completion events overlap the demand beam
    issued right after and the CPU between rounds.  A step with ``join``
    True is a barrier instead: the round that follows consumes
    prefetched data, so the runner first waits for every speculative
    read still in flight (usually already landed — the overlap win).
    """

    requests: tuple[tuple[int, int], ...] = ()
    join: bool = False


Step = t.Union[CpuStep, IoStep, PrefetchStep]


@dataclasses.dataclass
class WorkProfile:
    """The full work trace of a single-query search."""

    steps: list[Step] = dataclasses.field(default_factory=list)
    #: Speculative node reads issued / never consumed (look-ahead
    #: prefetching); ``prefetch_hits`` on the IoSteps count the useful
    #: ones, so ``wasted == issued - useful`` holds per profile.
    prefetch_issued: int = 0
    prefetch_wasted: int = 0

    def add_cpu(self, full_evals: int = 0, pq_evals: int = 0,
                table_builds: int = 0) -> None:
        """Append computation, merging with a trailing CPU step."""
        if self.steps and isinstance(self.steps[-1], CpuStep):
            last = self.steps[-1]
            self.steps[-1] = CpuStep(
                last.full_evals + full_evals,
                last.pq_evals + pq_evals,
                last.table_builds + table_builds)
        else:
            self.steps.append(CpuStep(full_evals, pq_evals, table_builds))

    def add_io(self, requests: t.Sequence[tuple[int, int]],
               cache_hits: int = 0, prefetch_hits: int = 0) -> None:
        """Append one dependent round of parallel reads."""
        self.steps.append(IoStep(tuple(requests), cache_hits,
                                 prefetch_hits))

    def add_prefetch(self, requests: t.Sequence[tuple[int, int]]) -> None:
        """Append one batch of speculative (non-blocking) reads."""
        if requests:
            self.steps.append(PrefetchStep(tuple(requests)))

    def add_prefetch_join(self) -> None:
        """Append a barrier on all in-flight speculative reads."""
        self.steps.append(PrefetchStep(join=True))

    # -- aggregate views used by tests and analysis ----------------------

    @property
    def full_evals(self) -> int:
        return sum(s.full_evals for s in self.steps
                   if isinstance(s, CpuStep))

    @property
    def pq_evals(self) -> int:
        return sum(s.pq_evals for s in self.steps if isinstance(s, CpuStep))

    @property
    def table_builds(self) -> int:
        return sum(s.table_builds for s in self.steps
                   if isinstance(s, CpuStep))

    @property
    def io_rounds(self) -> int:
        return sum(1 for s in self.steps
                   if isinstance(s, IoStep) and s.requests)

    @property
    def io_requests(self) -> int:
        return sum(len(s.requests) for s in self.steps
                   if isinstance(s, IoStep))

    @property
    def io_bytes(self) -> int:
        return sum(size for s in self.steps if isinstance(s, IoStep)
                   for _off, size in s.requests)

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.steps
                   if isinstance(s, IoStep))

    @property
    def prefetch_hits(self) -> int:
        """Node fetches served from the speculative prefetch buffer."""
        return sum(s.prefetch_hits for s in self.steps
                   if isinstance(s, IoStep))

    @property
    def prefetch_requests(self) -> int:
        return sum(len(s.requests) for s in self.steps
                   if isinstance(s, PrefetchStep))

    @property
    def prefetch_bytes(self) -> int:
        """Bytes of speculative reads (not included in io_bytes)."""
        return sum(size for s in self.steps if isinstance(s, PrefetchStep)
                   for _off, size in s.requests)


@dataclasses.dataclass
class SearchResult:
    """The unified result shape of every search layer.

    Index-, collection-, and engine-level searches all return this:
    ids, distances, and the work profile that produced them, plus —
    for collection-level searches — the per-segment profile list and,
    when telemetry is attached, the query's span.

    ``dists`` are in the index's internal metric units — comparable
    across results of indexes built with the same metric, which is what
    cross-segment merging needs.

    >>> import numpy as np
    >>> from repro.ann.flat import FlatIndex
    >>> index = FlatIndex().build(np.eye(3, dtype=np.float32))
    >>> result = index.search(np.eye(3)[1], k=2)
    >>> result.ids.tolist()
    [1, 0]
    >>> result.total_work.full_evals      # brute force scans all rows
    3
    """

    ids: t.Any                    # np.ndarray of int64
    work: WorkProfile
    dists: t.Any = None           # np.ndarray of float32, or None
    #: One work profile per searched segment (plus the growing buffer);
    #: None at the single-index level, where ``work`` is the only one.
    works: list[WorkProfile] | None = None
    #: Optional :class:`~repro.obs.QuerySpan` attributing time and I/O.
    span: t.Any = None

    @property
    def distances(self) -> t.Any:
        """Alias of ``dists`` (the public spelling)."""
        return self.dists

    @property
    def total_work(self) -> WorkProfile:
        """All steps over every searched segment, merged."""
        sources = self.works if self.works is not None else [self.work]
        merged = WorkProfile()
        for work in sources:
            merged.steps.extend(work.steps)
            merged.prefetch_issued += work.prefetch_issued
            merged.prefetch_wasted += work.prefetch_wasted
        return merged
