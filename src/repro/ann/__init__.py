"""ANN algorithms: distance kernels, quantizers, and the paper's indexes.

Every index returns, along with result ids, a
:class:`~repro.ann.workprofile.WorkProfile` describing the real work the
search performed (distance evaluations, dependent I/O rounds, block
requests), which the engine layer replays on the simulated hardware.
"""

from repro.ann.base import VectorIndex
from repro.ann.diskann import DiskANNIndex, DiskLayout
from repro.ann.distance import (METRICS, distances, make_batch_kernel,
                                normalize, pairwise, prepare_queries, top_k,
                                top_k_batch)
from repro.ann.flat import FlatIndex
from repro.ann.hnsw import HNSWIndex
from repro.ann.ivf import IVFIndex, default_nlist
from repro.ann.kmeans import kmeans, kmeans_pp_init
from repro.ann.pq import ProductQuantizer
from repro.ann.spann import SPANNIndex
from repro.ann.sq import ScalarQuantizer
from repro.ann.store import IndexStore, cache_key, default_store
from repro.ann.vamana import (VamanaGraph, build_vamana, greedy_search,
                              robust_prune)
from repro.ann.workprofile import (CpuStep, IoStep, SearchResult, WorkProfile)

__all__ = [
    "CpuStep",
    "DiskANNIndex",
    "DiskLayout",
    "FlatIndex",
    "IndexStore",
    "HNSWIndex",
    "IVFIndex",
    "IoStep",
    "METRICS",
    "ProductQuantizer",
    "SPANNIndex",
    "ScalarQuantizer",
    "SearchResult",
    "VamanaGraph",
    "VectorIndex",
    "WorkProfile",
    "build_vamana",
    "cache_key",
    "default_store",
    "default_nlist",
    "distances",
    "greedy_search",
    "kmeans",
    "kmeans_pp_init",
    "make_batch_kernel",
    "normalize",
    "pairwise",
    "prepare_queries",
    "robust_prune",
    "top_k",
    "top_k_batch",
]
