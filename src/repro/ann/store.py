"""Disk cache of built indexes.

The paper's artifact builds every index once before running experiments
(Appendix A.5); graph construction dominates wall-clock time there and
here.  :class:`IndexStore` pickles built indexes keyed by a canonical
string of (dataset, index kind, build parameters) so sweeps and repeated
benchmark invocations reuse them.

The cache directory defaults to ``.repro-cache/`` in the working
directory and can be moved with ``REPRO_CACHE_DIR``; delete it to force
rebuilds.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import typing as t
from pathlib import Path

from repro.errors import ReproError

CACHE_ENV = "REPRO_CACHE_DIR"
DEFAULT_DIR = ".repro-cache"

#: Per-process serial for temp-file names; combined with the pid it
#: keeps concurrent builders (and re-entrant builds of the same key in
#: one process) from ever sharing a temp file.
_tmp_counter = itertools.count()


def cache_dir() -> Path:
    """The active cache directory (created on demand)."""
    return Path(os.environ.get(CACHE_ENV, DEFAULT_DIR))


def cache_key(**parts: t.Any) -> str:
    """Canonical, filesystem-safe key from keyword parts."""
    if not parts:
        raise ReproError("cache_key needs at least one part")
    text = ";".join(f"{key}={parts[key]!r}" for key in sorted(parts))
    digest = hashlib.sha256(text.encode()).hexdigest()[:16]
    head = "-".join(
        str(parts[key]) for key in sorted(parts)
        if isinstance(parts[key], (str, int)))[:80]
    safe = "".join(ch if ch.isalnum() or ch in "-._" else "_"
                   for ch in head)
    return f"{safe}-{digest}"


class IndexStore:
    """get-or-build cache of picklable built objects."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else cache_dir()
        self.hits = 0
        self.builds = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get_or_build(self, key: str, factory: t.Callable[[], t.Any],
                     refresh: bool = False) -> t.Any:
        """Load the cached object for *key*, or build and cache it."""
        path = self.path_for(key)
        if not refresh and path.exists():
            try:
                with open(path, "rb") as handle:
                    obj = pickle.load(handle)
                self.hits += 1
                return obj
            except (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError):
                # Stale or corrupt entry — including pickles referencing
                # classes that have since been renamed or moved
                # (ImportError covers ModuleNotFoundError): rebuild.
                path.unlink(missing_ok=True)
        obj = factory()
        self.builds += 1
        self.root.mkdir(parents=True, exist_ok=True)
        # Unique per process *and* per call: concurrent builders of the
        # same key each write their own temp file, and the atomic
        # replace makes the last finisher win with an intact pickle.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_tmp_counter)}.tmp")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return obj

    def clear(self) -> int:
        """Remove all cached entries; returns how many were deleted."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("*.pkl"):
                path.unlink()
                removed += 1
        return removed


_default_store: IndexStore | None = None


def default_store() -> IndexStore:
    """Process-wide store rooted at :func:`cache_dir`."""
    global _default_store
    if _default_store is None or _default_store.root != cache_dir():
        _default_store = IndexStore()
    return _default_store
