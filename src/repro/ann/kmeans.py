"""Lloyd's k-means with k-means++ seeding.

Used by the IVF index (coarse centroids, paper Section II-B) and by the
product quantizer (per-subspace codebooks).
"""

from __future__ import annotations

import numpy as np

from repro.ann.distance import pairwise
from repro.errors import AnnIndexError


def kmeans_pp_init(X: np.ndarray, k: int,
                   rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = X.shape[0]
    centroids = np.empty((k, X.shape[1]), dtype=np.float32)
    centroids[0] = X[rng.integers(n)]
    closest = pairwise(X, centroids[:1], "l2").ravel()
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[i:] = X[rng.integers(n, size=k - i)]
            break
        probs = closest / total
        centroids[i] = X[rng.choice(n, p=probs)]
        dist_new = pairwise(X, centroids[i:i + 1], "l2").ravel()
        np.minimum(closest, dist_new, out=closest)
    return centroids


def kmeans(X: np.ndarray, k: int, max_iters: int = 20,
           seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Cluster rows of *X* into *k* groups.

    Returns ``(centroids, assignments)``.  Empty clusters are re-seeded
    from the points farthest from their current centroid, so exactly *k*
    centroids always come back.
    """
    X = np.asarray(X, dtype=np.float32)
    if X.ndim != 2 or X.shape[0] == 0:
        raise AnnIndexError(f"kmeans needs a non-empty 2D array: {X.shape}")
    n = X.shape[0]
    if k <= 0:
        raise AnnIndexError(f"k must be positive: {k}")
    if k >= n:
        # Degenerate but legal: each point is its own centroid; surplus
        # centroids repeat the last point.
        centroids = np.vstack([X, np.repeat(X[-1:], k - n, axis=0)])
        return centroids.astype(np.float32), np.arange(n, dtype=np.int64)

    rng = np.random.default_rng(seed)
    centroids = kmeans_pp_init(X, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    for _iteration in range(max_iters):
        dists = pairwise(X, centroids, "l2")
        new_assignments = dists.argmin(axis=1)
        if np.array_equal(new_assignments, assignments) and _iteration > 0:
            break
        assignments = new_assignments
        for j in range(k):
            members = X[assignments == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
            else:
                farthest = dists.min(axis=1).argmax()
                centroids[j] = X[farthest]
    return centroids, assignments
