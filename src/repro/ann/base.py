"""Common interface of all ANN indexes in this library."""

from __future__ import annotations

import abc

import numpy as np

from repro.ann.workprofile import SearchResult
from repro.errors import AnnIndexError


class VectorIndex(abc.ABC):
    """A built-once, searched-many index over a fixed vector set.

    Dynamic insertion/deletion is handled one level up, by the engines'
    segment management (the way Milvus seals immutable segments), so the
    index layer can stay simple and immutable.
    """

    #: Human-readable kind, e.g. "ivf", "hnsw", "diskann".
    kind: str = "abstract"
    #: Whether searching reads from storage (True) or memory only.
    storage_based: bool = False

    def __init__(self, metric: str = "l2") -> None:
        self.metric = metric
        self._built = False

    @property
    def built(self) -> bool:
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise AnnIndexError(f"{self.kind} index searched before build()")

    @abc.abstractmethod
    def build(self, X: np.ndarray) -> "VectorIndex":
        """Construct the index over the rows of *X*."""

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int, **params) -> SearchResult:
        """Return the ids of the ~k nearest rows plus the work done."""

    def search_batch(self, queries: np.ndarray, k: int,
                     **params) -> list[SearchResult]:
        """Search a ``(B, dim)`` batch; one result per query, in order.

        Results are bit-identical to calling :meth:`search` on each row
        in sequence — the contract the batch-equivalence property suite
        enforces for every index kind.  Subclasses with vectorizable
        scans (flat, IVF) override this to amortize kernel work across
        the batch; the default simply loops.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2:
            raise AnnIndexError(
                f"query batch must be 2D (B, dim): {queries.shape}")
        return [self.search(query, k, **params) for query in queries]

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Resident memory footprint of the built index."""

    def disk_bytes(self) -> int:
        """On-disk footprint; zero for memory-based indexes."""
        return 0
