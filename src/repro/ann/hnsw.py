"""HNSW: the memory-based graph index of Malkov & Yashunin (paper [54]).

A hierarchy of navigable-small-world layers; search greedily descends
the upper layers and then runs a best-first expansion with a candidate
list of size ``ef`` on the bottom layer (paper Figure 1b).  Build-time
parameters ``M`` and ``efConstruction`` follow the paper's settings
(M=16, efConstruction=200, Table II).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.ann.base import VectorIndex
from repro.ann.distance import make_kernel, prepare, prepare_query
from repro.ann.workprofile import SearchResult, WorkProfile
from repro.errors import AnnIndexError


class _EvalCounter:
    """Counts distance evaluations during one search or insert.

    When *log* is given, the ids of every evaluated node are appended
    to it — the mmap adapter uses this to derive page accesses.
    """

    __slots__ = ("count", "log")

    def __init__(self, log: list | None = None) -> None:
        self.count = 0
        self.log = log

    def add(self, ids) -> None:
        self.count += len(ids)
        if self.log is not None:
            self.log.extend(int(i) for i in ids)


class HNSWIndex(VectorIndex):
    """Hierarchical navigable small-world graph."""

    kind = "hnsw"

    def __init__(self, metric: str = "l2", M: int = 16,
                 ef_construction: int = 200, seed: int = 0) -> None:
        if M < 2:
            raise AnnIndexError(f"M must be >= 2: {M}")
        super().__init__(metric)
        self.M = M
        self.M0 = 2 * M                      # bottom layer allows 2M links
        self.ef_construction = ef_construction
        self.seed = seed
        self._mult = 1.0 / math.log(M)
        self._X: np.ndarray | None = None
        #: adjacency[level][node] -> list[int]; upper levels are sparse
        #: dicts keyed by node id.
        self._layers: list[dict[int, list[int]]] = []
        self._entry: int = -1
        self._node_levels: np.ndarray | None = None

    # The distance kernel is a closure and cannot be pickled; drop it on
    # serialization and rebuild it on load (IndexStore caches indexes).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_kern", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._X is not None:
            self._kern = make_kernel(self._X, self._imetric)
        if self._built:
            self._freeze_adjacency()  # older pickles hold Python lists

    # -- construction -----------------------------------------------------

    def build(self, X: np.ndarray) -> "HNSWIndex":
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[0] == 0:
            raise AnnIndexError(f"HNSW needs non-empty 2D data: {X.shape}")
        self._X, self._imetric = prepare(X, self.metric)
        self._kern = make_kernel(self._X, self._imetric)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self._node_levels = np.minimum(
            (-np.log(rng.uniform(size=n)) * self._mult).astype(np.int64), 31)
        top = int(self._node_levels.max())
        self._layers = [dict() for _ in range(top + 1)]
        for node in range(n):
            self._insert(node)
        self._freeze_adjacency()
        self._built = True
        return self

    def _freeze_adjacency(self) -> None:
        """Convert adjacency lists to int64 arrays once inserts finish.

        Search then gathers neighbour vectors through contiguous index
        arrays instead of Python lists, which is what the fancy-indexing
        fast path in numpy wants.
        """
        for layer in self._layers:
            for node, links in layer.items():
                layer[node] = np.asarray(links, dtype=np.int64)

    def _insert(self, node: int) -> None:
        level = int(self._node_levels[node])
        query = self._X[node]
        for lc in range(level + 1):
            self._layers[lc][node] = []
        if self._entry < 0:
            self._entry = node
            return
        counter = _EvalCounter()
        entry = self._entry
        entry_level = int(self._node_levels[self._entry])
        for lc in range(entry_level, level, -1):
            entry = self._greedy_step(query, entry, lc, counter)
        for lc in range(min(level, entry_level), -1, -1):
            candidates = self._search_layer(query, [entry], lc,
                                            self.ef_construction, counter)
            m_max = self.M0 if lc == 0 else self.M
            neighbors = self._select_neighbors(query, candidates, self.M)
            self._layers[lc][node] = [nid for _d, nid in neighbors]
            for _d, nid in neighbors:
                links = self._layers[lc][nid]
                links.append(node)
                if len(links) > m_max:
                    link_dists = self._kern(self._X[nid], links)
                    pruned = self._select_neighbors(
                        self._X[nid],
                        [(float(d), c) for d, c in zip(link_dists, links)],
                        m_max)
                    self._layers[lc][nid] = [c for _d, c in pruned]
            entry = candidates[0][1]
        if level > entry_level:
            self._entry = node

    def _greedy_step(self, query: np.ndarray, entry: int, level: int,
                     counter: _EvalCounter) -> int:
        """Greedy walk to the local minimum on one upper layer."""
        current = entry
        current_dist = float(self._kern(query, [current])[0])
        counter.add([current])
        improved = True
        while improved:
            improved = False
            links = self._layers[level].get(current)
            if links is None or len(links) == 0:
                break
            dists = self._kern(query, links)
            counter.add(links)
            best = int(dists.argmin())
            if dists[best] < current_dist:
                current = int(links[best])
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(self, query: np.ndarray, entries: list[int],
                      level: int, ef: int,
                      counter: _EvalCounter) -> list[tuple[float, int]]:
        """Best-first expansion; returns ef candidates sorted by distance.

        This is steps 2-4 of the paper's Figure 1b: maintain the top-ef
        candidate list L and the visited set V, expanding the closest
        unvisited candidate until L stabilizes.
        """
        entry_dists = self._kern(query, entries)
        counter.add(entries)
        visited = set(entries)
        candidates = [(float(d), e) for d, e in zip(entry_dists, entries)]
        heapq.heapify(candidates)                      # min-heap to expand
        results = [(-d, e) for d, e in candidates]     # max-heap to trim
        heapq.heapify(results)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -results[0][0] and len(results) >= ef:
                break
            neighbors = self._layers[level].get(node)
            if neighbors is None or len(neighbors) == 0:
                continue
            fresh = [int(nid) for nid in neighbors if int(nid) not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            fresh = np.asarray(fresh, dtype=np.int64)
            dists = self._kern(query, fresh)
            counter.add(fresh)
            for d, nid in zip(dists, fresh):
                d = float(d)
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, nid))
                    heapq.heappush(results, (-d, nid))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-d, nid) for d, nid in results)

    def _select_neighbors(self, query: np.ndarray,
                          candidates: list[tuple[float, int]],
                          m: int) -> list[tuple[float, int]]:
        """Diversity heuristic of the HNSW paper (select_neighbors_heuristic).

        A candidate is kept only if it is closer to the query than to
        every already-kept neighbour, which spreads links in different
        directions and keeps the graph navigable.
        """
        kept: list[tuple[float, int]] = []
        for dist, nid in sorted(candidates):
            if len(kept) >= m:
                break
            if not kept:
                kept.append((dist, nid))
                continue
            kept_ids = [c for _d, c in kept]
            to_kept = self._kern(self._X[nid], kept_ids)
            if np.all(dist <= to_kept):
                kept.append((dist, nid))
        if not kept:  # pathological ties: fall back to plain nearest
            kept = sorted(candidates)[:m]
        return kept

    # -- search -----------------------------------------------------------

    def search(self, query: np.ndarray, k: int, *,
               ef_search: int = 64,
               access_log: list | None = None) -> SearchResult:
        """Search the graph; *access_log* optionally collects the ids of
        every node whose vector was read (for paged/mmap storage)."""
        self._require_built()
        if ef_search < 1:
            raise AnnIndexError(f"ef_search must be >= 1: {ef_search}")
        ef = max(ef_search, k)
        query = prepare_query(query, self.metric)
        counter = _EvalCounter(access_log)
        entry = self._entry
        for lc in range(int(self._node_levels[self._entry]), 0, -1):
            entry = self._greedy_step(query, entry, lc, counter)
        candidates = self._search_layer(query, [entry], 0, ef, counter)
        ids = np.asarray([nid for _d, nid in candidates[:k]], dtype=np.int64)
        dists = np.asarray([d for d, _nid in candidates[:k]],
                           dtype=np.float32)
        work = WorkProfile()
        work.add_cpu(full_evals=counter.count)
        return SearchResult(ids=ids, work=work, dists=dists)

    # -- footprints --------------------------------------------------------

    def memory_bytes(self) -> int:
        self._require_built()
        links = sum(len(neighbors) for layer in self._layers
                    for neighbors in layer.values())
        return self._X.nbytes + links * 4 + len(self._X) * 8

    def graph_degree_stats(self) -> tuple[float, int]:
        """(mean, max) bottom-layer out-degree; used by invariant tests."""
        self._require_built()
        degrees = [len(v) for v in self._layers[0].values()]
        return float(np.mean(degrees)), int(np.max(degrees))
