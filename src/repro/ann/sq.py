"""Scalar quantization: per-dimension linear mapping to int8.

LanceDB's memory-based HNSW index only supports scalar-quantized vectors
(paper Section III-C); the quantization error is one reason its tuned
``efSearch`` values are higher than the other databases' (Table II).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnnIndexError


class ScalarQuantizer:
    """Per-dimension min/max affine quantizer to uint8."""

    LEVELS = 255

    def __init__(self) -> None:
        self.lo: np.ndarray | None = None
        self.scale: np.ndarray | None = None

    @property
    def trained(self) -> bool:
        return self.lo is not None

    def train(self, X: np.ndarray) -> "ScalarQuantizer":
        """Learn per-dimension ranges from training vectors."""
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[0] == 0:
            raise AnnIndexError(f"bad training shape: {X.shape}")
        self.lo = X.min(axis=0)
        span = X.max(axis=0) - self.lo
        span[span == 0.0] = 1.0
        self.scale = span / self.LEVELS
        return self

    def _require_trained(self) -> None:
        if not self.trained:
            raise AnnIndexError("scalar quantizer used before train()")

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Quantize to uint8 codes of the same shape."""
        self._require_trained()
        X = np.asarray(X, dtype=np.float32)
        codes = np.rint((X - self.lo) / self.scale)
        return np.clip(codes, 0, self.LEVELS).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate float vectors."""
        self._require_trained()
        return codes.astype(np.float32) * self.scale + self.lo

    def code_bytes(self, dim: int) -> int:
        """Bytes per encoded vector (1 byte per dimension)."""
        return dim
