"""Product quantization (Jegou et al., paper ref [46]).

Splits vectors into ``m`` subspaces, learns a small codebook per
subspace, and represents each vector by ``m`` one-byte codes.  DiskANN
keeps exactly these codes in memory to steer the on-disk graph search;
LanceDB's storage-based IVF index stores them in its posting lists.

Asymmetric distance computation (ADC): per query, a (m x k) table of
query-to-codeword distances is built once, after which each encoded
vector's distance is ``m`` table lookups.
"""

from __future__ import annotations

import numpy as np

from repro.ann.kmeans import kmeans
from repro.errors import AnnIndexError


class ProductQuantizer:
    """Trainable PQ codec with ADC search support."""

    def __init__(self, dim: int, m: int = 8, nbits: int = 8,
                 seed: int = 0) -> None:
        if dim % m != 0:
            raise AnnIndexError(f"dim {dim} not divisible into {m} subspaces")
        if not 1 <= nbits <= 8:
            raise AnnIndexError(f"nbits must be in [1, 8]: {nbits}")
        self.dim = dim
        self.m = m
        self.dsub = dim // m
        self.ksub = 1 << nbits
        self.seed = seed
        #: Codewords actually learned; < ksub when the training set has
        #: fewer rows than codewords (set by :meth:`train`).
        self.ksub_effective = self.ksub
        self.codebooks: np.ndarray | None = None  # (m, ksub_effective, dsub)

    @property
    def trained(self) -> bool:
        return self.codebooks is not None

    def train(self, X: np.ndarray) -> "ProductQuantizer":
        """Learn per-subspace codebooks from training vectors."""
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[1] != self.dim:
            raise AnnIndexError(f"bad training shape {X.shape} for dim "
                              f"{self.dim}")
        # With fewer training rows than codewords, only that many
        # distinct centroids exist; storing duplicated padding rows made
        # the 1-D grid encoder's searchsorted edges ambiguous, so the
        # codebooks hold exactly the learned codewords instead.
        ksub = min(self.ksub, X.shape[0])
        self.ksub_effective = ksub
        self.codebooks = np.zeros((self.m, ksub, self.dsub),
                                  dtype=np.float32)
        for sub in range(self.m):
            block = X[:, sub * self.dsub:(sub + 1) * self.dsub]
            if self.dsub == 1:
                # 1-D codebooks: quantile grids are near-optimal and far
                # cheaper than Lloyd iterations.
                qs = np.linspace(0.0, 1.0, ksub)
                centroids = np.quantile(block[:, 0], qs).astype(
                    np.float32).reshape(-1, 1)
            else:
                centroids, _ = kmeans(block, ksub, seed=self.seed + sub)
            self.codebooks[sub] = centroids
        return self

    def _require_trained(self) -> None:
        if not self.trained:
            raise AnnIndexError("product quantizer used before train()")

    def __setstate__(self, state: dict) -> None:
        # Quantizers pickled before the effective-ksub fix carry padded
        # codebooks; their stored shape *is* their effective width.
        self.__dict__.update(state)
        if "ksub_effective" not in state:
            self.ksub_effective = (self.codebooks.shape[1]
                                   if self.codebooks is not None
                                   else self.ksub)

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Quantize rows of *X* to (n, m) uint8 codes."""
        self._require_trained()
        X = np.asarray(X, dtype=np.float32)
        single = X.ndim == 1
        X = X.reshape(-1, self.dim)
        codes = np.empty((X.shape[0], self.m), dtype=np.uint8)
        for sub in range(self.m):
            block = X[:, sub * self.dsub:(sub + 1) * self.dsub]
            if self.dsub == 1:
                grid = self.codebooks[sub][:, 0]
                order = np.argsort(grid, kind="stable")
                edges = (grid[order][1:] + grid[order][:-1]) / 2.0
                codes[:, sub] = order[np.searchsorted(edges, block[:, 0])]
            else:
                # (n, ksub) distances via expansion
                diffs = block[:, None, :] - self.codebooks[sub][None, :, :]
                codes[:, sub] = np.einsum("nkd,nkd->nk", diffs,
                                          diffs).argmin(axis=1)
        return codes[0] if single else codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_trained()
        codes = np.asarray(codes, dtype=np.uint8).reshape(-1, self.m)
        out = np.empty((codes.shape[0], self.dim), dtype=np.float32)
        for sub in range(self.m):
            out[:, sub * self.dsub:(sub + 1) * self.dsub] = (
                self.codebooks[sub][codes[:, sub]])
        return out

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Per-query table of squared distances to every codeword."""
        self._require_trained()
        query = np.asarray(query, dtype=np.float32).reshape(self.dim)
        table = np.empty((self.m, self.codebooks.shape[1]),
                         dtype=np.float32)
        for sub in range(self.m):
            diff = self.codebooks[sub] - query[sub * self.dsub:
                                               (sub + 1) * self.dsub]
            table[sub] = np.einsum("kd,kd->k", diff, diff)
        return table

    def adc_tables(self, queries: np.ndarray) -> np.ndarray:
        """``(B, m, ksub_effective)`` ADC tables for a batch of queries.

        Row ``b`` is bit-identical to ``adc_table(queries[b])``: the
        broadcast einsum reduces each (codeword, query) pair exactly as
        the per-query loop does.
        """
        self._require_trained()
        queries = np.asarray(queries, dtype=np.float32).reshape(
            -1, self.dim)
        diffs = (self.codebooks[None, :, :, :]
                 - queries.reshape(-1, self.m, 1, self.dsub))
        return np.einsum("bmkd,bmkd->bmk", diffs, diffs)

    @staticmethod
    def adc_distances(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Squared distances of encoded vectors to the table's query."""
        codes = np.asarray(codes, dtype=np.uint8).reshape(-1, table.shape[0])
        return table[np.arange(table.shape[0])[None, :], codes].sum(axis=1)

    @staticmethod
    def adc_distances_batch(tables: np.ndarray,
                            codes: np.ndarray) -> np.ndarray:
        """``(B, n)`` ADC distances: every query's table against a
        contiguous uint8 code block.

        The per-code ``(subspace, codeword)`` lookups are flattened into
        one index block shared by every query, so each query's gather is
        a single ``take`` from its raveled table; the reduction then
        runs over that contiguous ``(n, m)`` gather so row ``b`` stays
        bit-identical to ``adc_distances(tables[b], codes)`` (a 3-D
        ``sum(axis=2)`` accumulates in a different order and is *not*).
        """
        n_queries, m, ksub = tables.shape
        codes = np.asarray(codes, dtype=np.uint8).reshape(-1, m)
        flat = np.arange(m)[None, :] * ksub + codes        # (n, m)
        out = np.empty((n_queries, codes.shape[0]), dtype=tables.dtype)
        for b in range(n_queries):
            out[b] = tables[b].ravel()[flat].sum(axis=1)
        return out

    def code_bytes(self) -> int:
        """Bytes per encoded vector."""
        return self.m
