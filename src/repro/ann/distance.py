"""Vectorized distance kernels shared by every index.

Supported metrics mirror those of the benchmarked databases: squared
Euclidean (``l2``), inner product (``ip``), and ``cosine``.  All kernels
return values where *smaller means closer*, so callers can rank results
uniformly; for ``ip`` and ``cosine`` the kernels therefore return
negated similarity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnnIndexError

METRICS = ("l2", "ip", "cosine")


def _as_2d(Y: np.ndarray) -> np.ndarray:
    return Y if Y.ndim == 2 else Y.reshape(1, -1)


def normalize(X: np.ndarray) -> np.ndarray:
    """L2-normalize rows, guarding all-zero rows."""
    X = np.asarray(X, dtype=np.float32)
    norms = np.linalg.norm(_as_2d(X), axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return (_as_2d(X) / norms).reshape(X.shape)


def distances(query: np.ndarray, Y: np.ndarray, metric: str) -> np.ndarray:
    """Distance from one query vector to each row of *Y* (smaller=closer)."""
    Y = _as_2d(np.asarray(Y, dtype=np.float32))
    query = np.asarray(query, dtype=np.float32).reshape(-1)
    if query.shape[0] != Y.shape[1]:
        raise AnnIndexError(
            f"dimension mismatch: query {query.shape[0]} vs data {Y.shape[1]}")
    if metric == "l2":
        diff = Y - query
        return np.einsum("ij,ij->i", diff, diff)
    if metric == "ip":
        return -(Y @ query)
    if metric == "cosine":
        similarity = (Y @ query) / (
            (np.linalg.norm(Y, axis=1) * np.linalg.norm(query)) + 1e-30)
        return -similarity
    raise AnnIndexError(f"unknown metric {metric!r}; choose from {METRICS}")


def pairwise(X: np.ndarray, Y: np.ndarray, metric: str) -> np.ndarray:
    """Distance matrix between rows of *X* and rows of *Y*."""
    X = _as_2d(np.asarray(X, dtype=np.float32))
    Y = _as_2d(np.asarray(Y, dtype=np.float32))
    if X.shape[1] != Y.shape[1]:
        raise AnnIndexError(
            f"dimension mismatch: {X.shape[1]} vs {Y.shape[1]}")
    if metric == "l2":
        x_sq = np.einsum("ij,ij->i", X, X)[:, None]
        y_sq = np.einsum("ij,ij->i", Y, Y)[None, :]
        out = x_sq + y_sq - 2.0 * (X @ Y.T)
        np.maximum(out, 0.0, out=out)
        return out
    if metric == "ip":
        return -(X @ Y.T)
    if metric == "cosine":
        xn = np.linalg.norm(X, axis=1, keepdims=True) + 1e-30
        yn = np.linalg.norm(Y, axis=1, keepdims=True) + 1e-30
        return -((X / xn) @ (Y / yn).T)
    raise AnnIndexError(f"unknown metric {metric!r}; choose from {METRICS}")


def prepare(X: np.ndarray, metric: str) -> tuple[np.ndarray, str]:
    """Preprocess data so the cheapest equivalent kernel can be used.

    For ``cosine``, vectors are L2-normalized once at build time and the
    internal metric becomes ``l2n``: squared Euclidean distance on unit
    vectors, computed as ``2 - 2 * <x, q>``.  It ranks identically to
    cosine but is *non-negative*, which graph-pruning rules with
    multiplicative slack (DiskANN's RobustPrune alpha) require.
    Returns ``(data, internal_metric)``.
    """
    X = np.ascontiguousarray(X, dtype=np.float32)
    if metric == "cosine":
        return normalize(X), "l2n"
    if metric in ("l2", "ip"):
        return X, metric
    raise AnnIndexError(f"unknown metric {metric!r}; choose from {METRICS}")


def prepare_query(query: np.ndarray, metric: str) -> np.ndarray:
    """The query-side counterpart of :func:`prepare`."""
    query = np.asarray(query, dtype=np.float32).reshape(-1)
    return normalize(query) if metric == "cosine" else query


def make_kernel(X: np.ndarray, internal_metric: str):
    """A fast closure ``kernel(query, ids) -> dists`` over rows of *X*.

    Avoids the per-call validation of :func:`distances` in index hot
    loops; *X* must already be the output of :func:`prepare`.

    Every inner product runs through the same fixed-width padded GEMM
    as :func:`make_batch_kernel` (never a raw BLAS matvec), so a row's
    distance depends only on its content and the query — not on how
    many other rows happen to be gathered into the same scoring call.
    BLAS matvec paths switch algorithms (and summation order) with the
    gathered row count, which made the *same* vector score to
    different last-ulp bits in different frontiers; content-only bits
    are what keeps a sharded index's distances identical to the
    single-node index's for identical rows, which the cluster layer's
    (distance, id) merge relies on (see :mod:`repro.cluster.merge`).
    """
    dim = X.shape[1]

    def matvec(Xs: np.ndarray, query: np.ndarray) -> np.ndarray:
        padded = np.zeros((dim, _BATCH_W), dtype=np.float32)
        padded[:, 0] = query
        return (Xs @ padded)[:, 0]

    if internal_metric == "ip":
        def kernel(query: np.ndarray, ids) -> np.ndarray:
            return -matvec(X[ids], query)
        return kernel
    if internal_metric == "l2n":
        def kernel(query: np.ndarray, ids) -> np.ndarray:
            return 2.0 - 2.0 * matvec(X[ids], query)
        return kernel
    if internal_metric == "l2":
        def kernel(query: np.ndarray, ids) -> np.ndarray:
            diff = X[ids] - query
            return np.einsum("ij,ij->i", diff, diff)
        return kernel
    raise AnnIndexError(f"no kernel for metric {internal_metric!r}")


def top_k(dists: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* smallest distances, sorted ascending.

    Fully deterministic: equal distances are broken by ascending index,
    exactly as if the whole array were stable-sorted by ``(dist, id)``
    and truncated to *k*.  (``np.argpartition`` alone leaves the order
    — and, on a tie at the k-th place, even the *membership* — of equal
    distances unspecified across numpy versions.)
    """
    n = dists.shape[0]
    k = min(k, n)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k == n:
        return np.argsort(dists, kind="stable").astype(np.int64)
    part = np.argpartition(dists, k - 1)[:k]
    threshold = dists[part].max()
    # All indices at or below the k-th distance, ascending; the stable
    # sort then ranks by distance with ties in ascending-id order.
    candidates = np.flatnonzero(dists <= threshold)
    order = candidates[np.argsort(dists[candidates], kind="stable")]
    return order[:k].astype(np.int64)


def top_k_batch(dists: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`top_k` over a ``(B, n)`` distance matrix.

    Returns ``(B, min(k, n))`` indices; every row is bit-identical to
    ``top_k(dists[row], k)``.  The fast path partitions all rows in one
    numpy call; rows with a tie straddling the k-th place (where the
    partition's membership choice is unspecified) fall back to the
    scalar routine.
    """
    dists = np.asarray(dists)
    if dists.ndim != 2:
        raise AnnIndexError(f"top_k_batch needs a 2D matrix: {dists.shape}")
    n_queries, n = dists.shape
    k = min(k, n)
    if k <= 0:
        return np.empty((n_queries, 0), dtype=np.int64)
    if k == n:
        return np.argsort(dists, axis=1, kind="stable").astype(np.int64)
    # Partition on k (not k-1): position k then holds the (k+1)-th
    # smallest distance — the minimum of everything excluded — so the
    # ambiguity test below needs no full-width gather.
    part = np.argpartition(dists, k, axis=1)
    kept = np.sort(part[:, :k], axis=1)            # candidate ids ascending
    kept_dists = np.take_along_axis(dists, kept, axis=1)
    order = np.argsort(kept_dists, axis=1, kind="stable")
    out = np.take_along_axis(kept, order, axis=1).astype(np.int64)
    # A row is ambiguous iff something outside the partition ties the
    # row's k-th distance; re-rank those rows exactly.
    threshold = kept_dists.max(axis=1)
    spill = np.take_along_axis(dists, part[:, k:k + 1], axis=1)[:, 0]
    for row in np.flatnonzero(spill <= threshold):
        out[row] = top_k(dists[row], k)
    return out


#: Column width of the batched GEMM blocks.  Scoring always runs
#: through fixed-shape ``(n, _BATCH_W)`` matrix products (queries
#: zero-padded to the block width), which makes every result column
#: independent of the batch size and of the other queries in the block
#: — the property the batch-vs-sequential bit-identity tests pin down.
_BATCH_W = 16


def make_batch_kernel(X: np.ndarray, internal_metric: str,
                      x_sq: np.ndarray | None = None):
    """A closure ``kernel(Q, ids) -> (B, n_ids)`` over rows of *X*.

    The batch-of-queries counterpart of :func:`make_kernel`: *Q* is a
    ``(B, dim)`` float32 block of prepared queries, *ids* selects rows
    of *X* (an index array or a slice).  Distances are computed through
    fixed-width padded GEMM blocks (see :data:`_BATCH_W`), so column
    ``j`` of the result is bit-identical for any batch that contains
    query ``j`` — including ``B == 1``, which is how the single-query
    search paths stay bit-identical to the batched ones.

    For ``l2``, *x_sq* may pass in the precomputed row norms
    ``einsum("ij,ij->i", X, X)`` to avoid recomputing them per call.
    """
    dim = X.shape[1]

    def gemm(Xs: np.ndarray, Q: np.ndarray) -> np.ndarray:
        """(B, n) inner products via zero-padded fixed-width blocks."""
        n_queries = Q.shape[0]
        out = np.empty((n_queries, Xs.shape[0]), dtype=np.float32)
        for start in range(0, n_queries, _BATCH_W):
            stop = min(start + _BATCH_W, n_queries)
            padded = np.zeros((dim, _BATCH_W), dtype=np.float32)
            padded[:, :stop - start] = Q[start:stop].T
            out[start:stop] = (Xs @ padded)[:, :stop - start].T
        return out

    if internal_metric == "ip":
        def kernel(Q: np.ndarray, ids) -> np.ndarray:
            return -gemm(X[ids], Q)
        return kernel
    if internal_metric == "l2n":
        def kernel(Q: np.ndarray, ids) -> np.ndarray:
            return 2.0 - 2.0 * gemm(X[ids], Q)
        return kernel
    if internal_metric == "l2":
        if x_sq is None:
            x_sq = np.einsum("ij,ij->i", X, X)

        def kernel(Q: np.ndarray, ids) -> np.ndarray:
            out = x_sq[ids][None, :] + np.einsum(
                "ij,ij->i", Q, Q)[:, None] - 2.0 * gemm(X[ids], Q)
            np.maximum(out, 0.0, out=out)
            return out
        return kernel
    raise AnnIndexError(f"no batch kernel for metric {internal_metric!r}")


def prepare_queries(queries: np.ndarray, metric: str) -> np.ndarray:
    """The batch counterpart of :func:`prepare_query`.

    Returns a ``(B, dim)`` float32 block; each row equals
    ``prepare_query(queries[row], metric)`` bit-for-bit.
    """
    queries = np.asarray(queries, dtype=np.float32)
    if queries.ndim != 2:
        raise AnnIndexError(
            f"query batch must be 2D (B, dim): {queries.shape}")
    if metric == "cosine":
        return np.vstack([normalize(q) for q in queries])
    return np.ascontiguousarray(queries)
