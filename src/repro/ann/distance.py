"""Vectorized distance kernels shared by every index.

Supported metrics mirror those of the benchmarked databases: squared
Euclidean (``l2``), inner product (``ip``), and ``cosine``.  All kernels
return values where *smaller means closer*, so callers can rank results
uniformly; for ``ip`` and ``cosine`` the kernels therefore return
negated similarity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnnIndexError

METRICS = ("l2", "ip", "cosine")


def _as_2d(Y: np.ndarray) -> np.ndarray:
    return Y if Y.ndim == 2 else Y.reshape(1, -1)


def normalize(X: np.ndarray) -> np.ndarray:
    """L2-normalize rows, guarding all-zero rows."""
    X = np.asarray(X, dtype=np.float32)
    norms = np.linalg.norm(_as_2d(X), axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return (_as_2d(X) / norms).reshape(X.shape)


def distances(query: np.ndarray, Y: np.ndarray, metric: str) -> np.ndarray:
    """Distance from one query vector to each row of *Y* (smaller=closer)."""
    Y = _as_2d(np.asarray(Y))
    query = np.asarray(query).reshape(-1)
    if query.shape[0] != Y.shape[1]:
        raise AnnIndexError(
            f"dimension mismatch: query {query.shape[0]} vs data {Y.shape[1]}")
    if metric == "l2":
        diff = Y - query
        return np.einsum("ij,ij->i", diff, diff)
    if metric == "ip":
        return -(Y @ query)
    if metric == "cosine":
        similarity = (Y @ query) / (
            (np.linalg.norm(Y, axis=1) * np.linalg.norm(query)) + 1e-30)
        return -similarity
    raise AnnIndexError(f"unknown metric {metric!r}; choose from {METRICS}")


def pairwise(X: np.ndarray, Y: np.ndarray, metric: str) -> np.ndarray:
    """Distance matrix between rows of *X* and rows of *Y*."""
    X = _as_2d(np.asarray(X, dtype=np.float32))
    Y = _as_2d(np.asarray(Y, dtype=np.float32))
    if X.shape[1] != Y.shape[1]:
        raise AnnIndexError(
            f"dimension mismatch: {X.shape[1]} vs {Y.shape[1]}")
    if metric == "l2":
        x_sq = np.einsum("ij,ij->i", X, X)[:, None]
        y_sq = np.einsum("ij,ij->i", Y, Y)[None, :]
        out = x_sq + y_sq - 2.0 * (X @ Y.T)
        np.maximum(out, 0.0, out=out)
        return out
    if metric == "ip":
        return -(X @ Y.T)
    if metric == "cosine":
        xn = np.linalg.norm(X, axis=1, keepdims=True) + 1e-30
        yn = np.linalg.norm(Y, axis=1, keepdims=True) + 1e-30
        return -((X / xn) @ (Y / yn).T)
    raise AnnIndexError(f"unknown metric {metric!r}; choose from {METRICS}")


def prepare(X: np.ndarray, metric: str) -> tuple[np.ndarray, str]:
    """Preprocess data so the cheapest equivalent kernel can be used.

    For ``cosine``, vectors are L2-normalized once at build time and the
    internal metric becomes ``l2n``: squared Euclidean distance on unit
    vectors, computed as ``2 - 2 * <x, q>``.  It ranks identically to
    cosine but is *non-negative*, which graph-pruning rules with
    multiplicative slack (DiskANN's RobustPrune alpha) require.
    Returns ``(data, internal_metric)``.
    """
    X = np.ascontiguousarray(X, dtype=np.float32)
    if metric == "cosine":
        return normalize(X), "l2n"
    if metric in ("l2", "ip"):
        return X, metric
    raise AnnIndexError(f"unknown metric {metric!r}; choose from {METRICS}")


def prepare_query(query: np.ndarray, metric: str) -> np.ndarray:
    """The query-side counterpart of :func:`prepare`."""
    query = np.asarray(query, dtype=np.float32).reshape(-1)
    return normalize(query) if metric == "cosine" else query


def make_kernel(X: np.ndarray, internal_metric: str):
    """A fast closure ``kernel(query, ids) -> dists`` over rows of *X*.

    Avoids the per-call validation of :func:`distances` in index hot
    loops; *X* must already be the output of :func:`prepare`.
    """
    if internal_metric == "ip":
        def kernel(query: np.ndarray, ids) -> np.ndarray:
            return -(X[ids] @ query)
        return kernel
    if internal_metric == "l2n":
        def kernel(query: np.ndarray, ids) -> np.ndarray:
            return 2.0 - 2.0 * (X[ids] @ query)
        return kernel
    if internal_metric == "l2":
        def kernel(query: np.ndarray, ids) -> np.ndarray:
            diff = X[ids] - query
            return np.einsum("ij,ij->i", diff, diff)
        return kernel
    raise AnnIndexError(f"no kernel for metric {internal_metric!r}")


def top_k(dists: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* smallest distances, sorted ascending."""
    k = min(k, dists.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    part = np.argpartition(dists, k - 1)[:k]
    return part[np.argsort(dists[part], kind="stable")]
