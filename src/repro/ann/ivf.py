"""IVF: the cluster-based index of paper Section II-B (Figure 1a).

Vectors are k-means clustered into ``nlist`` cells; a query compares
against all centroids, picks the ``nprobe`` closest cells, and scans
them exhaustively.  Two variants exist in the paper's testbed:

* **memory-based raw IVF** (Milvus-IVF): full-precision vectors in RAM;
* **storage-based IVF-PQ** (LanceDB-IVF): product-quantized posting
  lists that live on disk and are read per probe.

``faiss``'s guideline ``nlist = 4 * sqrt(n)`` (paper Section III-C) is
the default.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ann.base import VectorIndex
from repro.ann.distance import (make_batch_kernel, prepare, prepare_queries,
                                 prepare_query, top_k, top_k_batch)
from repro.ann.kmeans import kmeans
from repro.ann.pq import ProductQuantizer
from repro.ann.workprofile import SearchResult, WorkProfile
from repro.errors import AnnIndexError
from repro.storage.spec import PAGE_SIZE


def default_nlist(n: int) -> int:
    """The faiss guideline the paper follows: ``4 * sqrt(n)``."""
    return max(1, int(round(4 * math.sqrt(n))))


class IVFIndex(VectorIndex):
    """Inverted-file index, optionally product-quantized and on disk."""

    kind = "ivf"

    def __init__(self, metric: str = "l2", nlist: int | None = None,
                 quantizer: ProductQuantizer | None = None,
                 on_disk: bool = False, record_bytes: int | None = None,
                 train_points: int = 20_000, seed: int = 0) -> None:
        """
        Args:
            nlist: number of cells; defaults to ``4 * sqrt(n)`` at build.
            quantizer: when given, posting lists hold PQ codes and
                search uses asymmetric-distance scans (LanceDB-IVF-PQ).
            on_disk: posting lists live on storage; every probed cell
                costs a read of its extent.
            record_bytes: on-disk bytes per posting-list entry; defaults
                to the PQ code size (+id) or the raw vector size (+id).
            train_points: k-means training sample cap.
        """
        super().__init__(metric)
        self.nlist = nlist
        self.quantizer = quantizer
        self.on_disk = on_disk
        self.record_bytes = record_bytes
        self.train_points = train_points
        self.seed = seed
        self.storage_based = on_disk
        self.centroids: np.ndarray | None = None
        self._X: np.ndarray | None = None        # prepared vectors
        self._imetric: str = "l2"
        self._lists: list[np.ndarray] = []       # ids per cell
        self._codes: list[np.ndarray] = []       # PQ codes per cell
        self._extents: list[tuple[int, int]] = []  # on-disk (offset, size)
        self._disk_bytes = 0
        self._x_sq: np.ndarray | None = None     # row norms for l2 kernels
        self._c_sq: np.ndarray | None = None     # centroid norms for l2

    # -- construction -----------------------------------------------------

    def build(self, X: np.ndarray) -> "IVFIndex":
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[0] == 0:
            raise AnnIndexError(f"IVF needs non-empty 2D data: {X.shape}")
        X, self._imetric = prepare(X, self.metric)
        self._X = X
        n, dim = X.shape
        if self.nlist is None:
            self.nlist = default_nlist(n)
        if self.nlist > n:
            raise AnnIndexError(f"nlist {self.nlist} exceeds dataset size {n}")

        rng = np.random.default_rng(self.seed)
        sample = X if n <= self.train_points else (
            X[rng.choice(n, self.train_points, replace=False)])
        self.centroids, _ = kmeans(sample, self.nlist, seed=self.seed)
        assignments = self._assign_blocked(X)

        if self.quantizer is not None:
            if not self.quantizer.trained:
                self.quantizer.train(sample)
            all_codes = self.quantizer.encode(X)

        if self.record_bytes is None:
            self.record_bytes = 8 + (
                self.quantizer.code_bytes() if self.quantizer is not None
                else dim * 4)

        offset = 0
        for cell in range(self.nlist):
            ids = np.flatnonzero(assignments == cell).astype(np.int64)
            self._lists.append(ids)
            if self.quantizer is not None:
                self._codes.append(all_codes[ids])
            size = max(PAGE_SIZE,
                       -(-len(ids) * self.record_bytes // PAGE_SIZE)
                       * PAGE_SIZE)
            self._extents.append((offset, size))
            offset += size
        self._disk_bytes = offset if self.on_disk else 0
        if self._imetric == "l2":
            self._x_sq = np.einsum("ij,ij->i", X, X)
            self._c_sq = np.einsum("ij,ij->i", self.centroids,
                                   self.centroids)
        self._built = True
        return self

    def _assign_blocked(self, X: np.ndarray,
                        block: int = 4096) -> np.ndarray:
        from repro.ann.distance import pairwise
        out = np.empty(X.shape[0], dtype=np.int64)
        for start in range(0, X.shape[0], block):
            stop = min(start + block, X.shape[0])
            out[start:stop] = pairwise(X[start:stop], self.centroids,
                                       "l2").argmin(axis=1)
        return out

    # -- search -----------------------------------------------------------

    def search(self, query: np.ndarray, k: int, *,
               nprobe: int = 8) -> SearchResult:
        # A batch of one: both paths share _scan, whose fixed-width GEMM
        # blocks make each query's result independent of its batchmates.
        self._require_built()
        query = prepare_query(query, self.metric)
        return self._scan(query.reshape(1, -1), k, nprobe)[0]

    def search_batch(self, queries: np.ndarray, k: int, *,
                     nprobe: int = 8) -> list[SearchResult]:
        """Batched search; the centroid scan runs as one GEMM and each
        probed cell is scored once for every query that probes it."""
        self._require_built()
        return self._scan(prepare_queries(queries, self.metric), k, nprobe)

    def _cached_sq(self, attr: str, X: np.ndarray) -> np.ndarray | None:
        """Row norms for the l2 batch kernel, cached on the instance
        (lazily, so indexes pickled before the cache existed warm up on
        first search)."""
        if self._imetric != "l2":
            return None
        val = getattr(self, attr, None)
        if val is None:
            val = np.einsum("ij,ij->i", X, X)
            setattr(self, attr, val)
        return val

    def _scan(self, Q: np.ndarray, k: int, nprobe: int) -> list[SearchResult]:
        if nprobe < 1:
            raise AnnIndexError(f"nprobe must be >= 1: {nprobe}")
        nprobe = min(nprobe, self.nlist)
        n_queries = Q.shape[0]

        centroid_dists = make_batch_kernel(
            self.centroids, self._imetric,
            x_sq=self._cached_sq("_c_sq", self.centroids))(Q, slice(None))
        probes = top_k_batch(centroid_dists, nprobe)

        # Invert probes so each cell is scored once per batch, for
        # exactly the queries that probe it.
        probe_rows = probes.tolist()
        cell_rows: dict[int, list[int]] = {}
        for row, row_probes in enumerate(probe_rows):
            for cell in row_probes:
                cell_rows.setdefault(cell, []).append(row)

        if self.quantizer is not None:
            tables = self.quantizer.adc_tables(Q)
        else:
            kernel = make_batch_kernel(
                self._X, self._imetric,
                x_sq=self._cached_sq("_x_sq", self._X))

        scores: dict[tuple[int, int], np.ndarray] = {}
        for cell, rows in cell_rows.items():
            cell_ids = self._lists[cell]
            if len(cell_ids) == 0:
                continue
            if self.quantizer is not None:
                block = ProductQuantizer.adc_distances_batch(
                    tables[rows], self._codes[cell])
            else:
                block = kernel(Q[rows], cell_ids)
            for pos, row in enumerate(rows):
                scores[row, cell] = block[pos]

        results = []
        for row, row_probes in enumerate(probe_rows):
            work = WorkProfile()
            work.add_cpu(full_evals=self.nlist)
            if self.on_disk:
                work.add_io([self._extents[cell] for cell in row_probes])
            chunks, idarrs, evals = [], [], 0
            for cell in row_probes:
                cell_ids = self._lists[cell]
                if len(cell_ids) == 0:
                    continue
                chunks.append(scores[row, cell])
                idarrs.append(cell_ids)
                evals += len(cell_ids)
            # One merged CPU step; add_cpu folds consecutive CPU work
            # anyway, so this equals the per-cell accounting it replaces.
            if self.quantizer is not None:
                work.add_cpu(table_builds=1, pq_evals=evals)
            elif evals:
                work.add_cpu(full_evals=evals)
            if not chunks:
                results.append(SearchResult(
                    ids=np.empty(0, dtype=np.int64), work=work,
                    dists=np.empty(0, dtype=np.float32)))
                continue
            all_dists = np.concatenate(chunks)
            all_ids = np.concatenate(idarrs)
            order = top_k(all_dists, k)
            results.append(SearchResult(
                ids=all_ids[order], work=work,
                dists=all_dists[order].astype(np.float32)))
        return results

    # -- footprints --------------------------------------------------------

    def memory_bytes(self) -> int:
        self._require_built()
        total = self.centroids.nbytes
        if self.on_disk:
            return total  # posting lists live on the device
        total += self._X.nbytes
        total += sum(c.nbytes for c in self._codes)
        return total

    def disk_bytes(self) -> int:
        self._require_built()
        return self._disk_bytes

    def list_sizes(self) -> np.ndarray:
        """Posting-list populations (used in ablations and tests)."""
        self._require_built()
        return np.asarray([len(ids) for ids in self._lists])
