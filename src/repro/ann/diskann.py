"""DiskANN: the storage-based graph index of paper Section II-B.

Faithful to the architecture of Subramanya et al. [68] as deployed in
Milvus:

* a **Vamana graph** whose nodes (full-precision vector + adjacency
  list) live in a sector-aligned file on the SSD;
* **product-quantized codes of every vector in memory**, used to rank
  candidates during traversal;
* **beam search**: each iteration picks the ``beam_width`` closest
  unvisited candidates from the ``search_list``-sized candidate list and
  fetches their sectors in parallel — reading a small beam of 4 KiB
  pages costs about the same as one page on NVMe;
* a **static node cache** (BFS neighbourhood of the medoid) plus an
  **LRU node cache**, mirroring Milvus's DiskANN cache budget; cached
  nodes cost no I/O.

Searches return the exact block requests they would issue, so the engine
layer can replay them against the simulated device and the block tracer
sees the 4 KiB-dominated random-read stream the paper reports (O-15).
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from repro.ann.base import VectorIndex
from repro.ann.distance import prepare_query
from repro.ann.pq import ProductQuantizer
from repro.ann.vamana import VamanaGraph, build_vamana
from repro.ann.workprofile import SearchResult, WorkProfile
from repro.errors import AnnIndexError
from repro.prefetch import (CachePolicy, LookaheadPrefetcher, PrefetchStats,
                            make_policy)
from repro.storage.spec import PAGE_SIZE


@dataclasses.dataclass(frozen=True)
class DiskLayout:
    """Sector-aligned placement of graph nodes in the index file.

    ``storage_dim`` is the *nominal* vector dimensionality used for
    record sizing (768 or 1536 in the paper's datasets), which may be
    larger than the intrinsic dimension of the simulated vectors; this
    preserves the paper's on-disk geometry — a 768-d node fits in one
    4 KiB sector, a 1536-d node spans two.
    """

    storage_dim: int
    R: int
    sector: int = PAGE_SIZE

    @property
    def node_bytes(self) -> int:
        # full vector + degree word + R neighbour ids
        return 4 * self.storage_dim + 4 + 4 * self.R

    @property
    def nodes_per_sector(self) -> int:
        return max(1, self.sector // self.node_bytes)

    @property
    def sectors_per_node(self) -> int:
        return -(-self.node_bytes // self.sector)

    def node_requests(self, node: int) -> tuple[tuple[int, int], ...]:
        """(offset, size) reads needed to fetch one node.

        Multi-sector nodes are read as separate 4 KiB requests, matching
        the pure-4 KiB streams observed at the block layer (O-15).
        """
        if self.node_bytes <= self.sector:
            sector = node // self.nodes_per_sector
            return ((sector * self.sector, self.sector),)
        first = node * self.sectors_per_node
        return tuple((s * self.sector, self.sector)
                     for s in range(first, first + self.sectors_per_node))

    def total_bytes(self, n: int) -> int:
        if self.node_bytes <= self.sector:
            return -(-n // self.nodes_per_sector) * self.sector
        return n * self.sectors_per_node * self.sector


class DiskANNIndex(VectorIndex):
    """PQ-in-memory, graph-on-SSD index with beam search."""

    kind = "diskann"
    storage_based = True
    # Class-level fallbacks: indexes unpickled from a pre-counter build
    # cache never ran the current __init__.
    static_hits = 0
    lru_hits = 0
    cache_misses = 0

    def __init__(self, metric: str = "l2", R: int = 32, L_build: int = 96,
                 alpha: float = 1.3, pq_m: int | None = None,
                 storage_dim: int | None = None, cache_bytes: int = 0,
                 lru_bytes: int = 0, seed: int = 0) -> None:
        """
        Args:
            R: graph degree bound.
            L_build: construction candidate-list size.
            alpha: RobustPrune relaxation.
            pq_m: PQ subspaces; defaults to one per dimension, which
                keeps PQ-steered recall at search_list=10 in the 0.93+
                band the paper's Table II reports.
            storage_dim: nominal on-disk dimensionality (default: the
                data's real dimension).
            cache_bytes: static BFS node-cache budget.
            lru_bytes: dynamic LRU node-cache budget.
        """
        super().__init__(metric)
        self.R = R
        self.L_build = L_build
        self.alpha = alpha
        self.pq_m = pq_m
        self.storage_dim = storage_dim
        self.cache_bytes = cache_bytes
        self.lru_bytes = lru_bytes
        self.seed = seed
        self.graph: VamanaGraph | None = None
        self.pq: ProductQuantizer | None = None
        self.codes: np.ndarray | None = None
        self.layout: DiskLayout | None = None
        self._static_cache: frozenset[int] = frozenset()
        self._policy_name = "lru"
        self._node_cache: CachePolicy = make_policy("lru", 0)
        self._lru_capacity = 0
        self.static_hits = 0
        self.lru_hits = 0
        self.cache_misses = 0
        self.prefetch_stats = PrefetchStats()

    # -- construction -----------------------------------------------------

    def build(self, X: np.ndarray) -> "DiskANNIndex":
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[0] == 0:
            raise AnnIndexError(f"DiskANN needs non-empty 2D data: {X.shape}")
        dim = X.shape[1]
        if self.storage_dim is None:
            self.storage_dim = dim
        if self.pq_m is None:
            self.pq_m = dim

        self.graph = build_vamana(X, self.metric, self.R, self.L_build,
                                  self.alpha, self.seed)
        # PQ is trained on the *prepared* vectors so its asymmetric
        # distances rank consistently with the graph's internal metric.
        prepared = self.graph.X
        self.pq = ProductQuantizer(dim, m=self.pq_m, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        n = prepared.shape[0]
        sample = prepared if n <= 20_000 else (
            prepared[rng.choice(n, 20_000, replace=False)])
        self.pq.train(sample)
        self.codes = self.pq.encode(prepared)
        self.layout = DiskLayout(self.storage_dim, self.R)
        self._build_caches(n)
        self._built = True
        return self

    def _build_caches(self, n: int) -> None:
        node_bytes = self.layout.node_bytes
        static_count = min(n, self.cache_bytes // node_bytes)
        cached: list[int] = []
        if static_count > 0:
            seen = {self.graph.medoid}
            queue = collections.deque([self.graph.medoid])
            while queue and len(cached) < static_count:
                node = queue.popleft()
                cached.append(node)
                for nid in self.graph.neighbors[node]:
                    nid = int(nid)
                    if nid not in seen:
                        seen.add(nid)
                        queue.append(nid)
        self._static_cache = frozenset(cached)
        self._lru_capacity = self.lru_bytes // node_bytes
        self._node_cache = self._make_node_cache(self._policy_name)

    def _make_node_cache(self, policy: str) -> CachePolicy:
        """The dynamic node cache under *policy* (pins for hotness)."""
        pinned: tuple[int, ...] = ()
        if policy == "hotness" and self._lru_capacity > 0:
            pinned = self._pin_candidates(
                max(1, self._lru_capacity // 4))
        return make_policy(policy, self._lru_capacity, pinned)

    def _pin_candidates(self, budget: int) -> tuple[int, ...]:
        """Entry point + high-degree hubs outside the static cache.

        These are the nodes every traversal crosses; pinning them in
        the hotness cache keeps them resident across ``drop_caches``.
        """
        ranked = [self.graph.medoid] + self.graph.high_degree_nodes(
            budget + len(self._static_cache) + 1)
        pinned: list[int] = []
        for nid in ranked:
            if nid in self._static_cache or nid in pinned:
                continue
            pinned.append(nid)
            if len(pinned) >= budget:
                break
        return tuple(pinned)

    def set_cache_policy(self, policy: str) -> None:
        """Switch the dynamic node cache's policy (resets its content)."""
        self._require_built()
        if policy == self._policy_name:
            return
        if policy not in ("lru", "hotness"):
            raise AnnIndexError(f"unknown cache policy {policy!r}")
        self._policy_name = policy
        self._node_cache = self._make_node_cache(policy)

    @property
    def cache_policy(self) -> str:
        """Name of the active dynamic-cache policy."""
        return self._policy_name

    def reset_dynamic_cache(self) -> None:
        """Empty the dynamic node cache (start of a fresh measured run).

        Under the hotness policy, pinned nodes and the frequency memory
        survive — the profiled-hotness semantics of GoVector: a dropped
        cache refills hot-first instead of thrashing from scratch.
        """
        self._node_cache.clear()

    def __setstate__(self, state: dict) -> None:
        # Indexes pickled before the policy refactor carry a plain
        # ``_lru`` OrderedDict; migrate them to an (empty) LRU policy.
        self.__dict__.update(state)
        if "_node_cache" not in state:
            self._policy_name = "lru"
            self._node_cache = make_policy(
                "lru", state.get("_lru_capacity", 0))
        if "prefetch_stats" not in state:
            self.prefetch_stats = PrefetchStats()

    def resize_caches(self, cache_bytes: int, lru_bytes: int) -> None:
        """Re-provision the node caches of a built index.

        Used by cache-budget ablations: the graph and PQ codes are
        untouched, only the static BFS cache and the LRU capacity are
        rebuilt for the new budgets.
        """
        self._require_built()
        if cache_bytes < 0 or lru_bytes < 0:
            raise AnnIndexError(
                f"negative cache budgets: {cache_bytes}/{lru_bytes}")
        self.cache_bytes = cache_bytes
        self.lru_bytes = lru_bytes
        self._build_caches(self.graph.n)

    # -- search -----------------------------------------------------------

    @staticmethod
    def degrade_search_params(params: dict, factor: float,
                              k: int) -> dict:
        """Shrunken search params for graceful degradation.

        Under sustained device pressure the resilience layer trades
        breadth for a bounded tail: ``search_list`` shrinks by *factor*
        (floored at ``k`` — the candidate list can never return fewer
        than the asked top-k) and ``beam_width`` shrinks alongside
        (floored at 1), so each dependent round puts fewer reads on a
        device that is already struggling to serve them.  All other
        knobs (prefetch, cache policy) pass through unchanged.
        """
        out = dict(params)
        if "search_list" in out:
            out["search_list"] = max(k, int(out["search_list"] * factor))
        if "beam_width" in out:
            out["beam_width"] = max(1, int(out["beam_width"] * factor))
        return out

    def search(self, query: np.ndarray, k: int, *, search_list: int = 10,
               beam_width: int = 4, prefetch_depth: int = 0,
               cache_policy: str | None = None) -> SearchResult:
        """Beam search with ``search_list`` candidates and I/O accounting.

        ``search_list`` is the paper's tunable L (candidate list size),
        ``beam_width`` its W — the number of unvisited candidates whose
        node sectors are fetched in parallel per iteration.

        ``prefetch_depth`` > 0 enables look-ahead prefetching: each
        round also issues speculative reads for up to that many of the
        best-ranked unvisited candidates *beyond* the beam — the likely
        next frontier.  ``cache_policy`` switches the dynamic node
        cache ("lru" or "hotness") before searching.  Neither parameter
        changes the traversal: returned ids and distances are
        bit-identical across all settings.
        """
        self._require_built()
        if search_list < 1 or beam_width < 1:
            raise AnnIndexError(
                f"bad params: search_list={search_list} "
                f"beam_width={beam_width}")
        if prefetch_depth < 0:
            raise AnnIndexError(f"bad prefetch_depth: {prefetch_depth}")
        if cache_policy is not None:
            self.set_cache_policy(cache_policy)
        search_list = max(search_list, k)
        query = prepare_query(query, self.metric)
        work = WorkProfile()
        prefetcher = (LookaheadPrefetcher(prefetch_depth,
                                          self.prefetch_stats)
                      if prefetch_depth > 0 else None)

        table = self.pq.adc_table(query)
        work.add_cpu(table_builds=1)
        medoid = self.graph.medoid
        medoid_dist = float(ProductQuantizer.adc_distances(
            table, self.codes[medoid:medoid + 1])[0])
        work.add_cpu(pq_evals=1)

        candidates: list[tuple[float, int]] = [(medoid_dist, medoid)]
        in_candidates = {medoid}
        visited: set[int] = set()
        exact: dict[int, float] = {}

        while True:
            unvisited = [nid for _d, nid in candidates
                         if nid not in visited]
            frontier = unvisited[:beam_width]
            if not frontier:
                break
            requests: dict[tuple[int, int], None] = {}
            hits = 0
            prefetch_hits = 0
            for nid in frontier:
                visited.add(nid)
                if nid in self._static_cache:
                    hits += 1
                    self.static_hits += 1
                elif nid in self._node_cache:
                    self._node_cache.touch(nid)
                    hits += 1
                    self.lru_hits += 1
                elif prefetcher is not None and prefetcher.consume(nid):
                    # Landed (or landing) speculatively: no demand read,
                    # but the round must join the in-flight speculation.
                    prefetch_hits += 1
                    self._node_cache.admit(nid)
                else:
                    self.cache_misses += 1
                    for request in self.layout.node_requests(nid):
                        requests[request] = None
                    self._node_cache.admit(nid)
            if prefetch_hits:
                work.add_prefetch_join()
            if prefetcher is not None:
                speculated = prefetcher.plan(
                    unvisited[beam_width:],
                    lambda nid: (nid in self._static_cache
                                 or nid in self._node_cache))
                speculative: dict[tuple[int, int], None] = {}
                for nid in speculated:
                    for request in self.layout.node_requests(nid):
                        speculative[request] = None
                work.add_prefetch(list(speculative))
            if requests or hits or prefetch_hits:
                work.add_io(list(requests), cache_hits=hits,
                            prefetch_hits=prefetch_hits)

            # Full-precision distances of the fetched nodes (their raw
            # vectors arrived with the sectors) — DiskANN's re-ranking.
            full = self.graph.kernel(
                query, np.asarray(frontier, dtype=np.int64))
            work.add_cpu(full_evals=len(frontier))
            for d, nid in zip(full, frontier):
                exact[nid] = float(d)

            fresh: list[int] = []
            for nid in frontier:
                for neighbor in self.graph.neighbors[nid]:
                    neighbor = int(neighbor)
                    if neighbor not in in_candidates:
                        in_candidates.add(neighbor)
                        fresh.append(neighbor)
            if fresh:
                pq_dists = ProductQuantizer.adc_distances(
                    table, self.codes[np.asarray(fresh, dtype=np.int64)])
                work.add_cpu(pq_evals=len(fresh))
                candidates.extend(
                    (float(d), nid) for d, nid in zip(pq_dists, fresh))
                candidates.sort()
                del candidates[search_list:]
                in_candidates = {nid for _d, nid in candidates} | visited

        best = sorted(exact.items(), key=lambda item: item[1])[:k]
        ids = np.asarray([nid for nid, _d in best], dtype=np.int64)
        dists = np.asarray([d for _nid, d in best], dtype=np.float32)
        if prefetcher is not None:
            work.prefetch_wasted = prefetcher.finish()
            work.prefetch_issued = (work.prefetch_hits
                                    + work.prefetch_wasted)
        return SearchResult(ids=ids, work=work, dists=dists)

    # -- footprints --------------------------------------------------------

    def memory_bytes(self) -> int:
        """Resident set: PQ codes + codebooks + node caches.

        The LRU term is its current *occupancy*, not its capacity —
        right after :meth:`reset_dynamic_cache` the dynamic cache holds
        nothing and charges nothing, which is what concurrency-OOM
        modeling needs.  Capacity planners that budget for a fully
        warmed cache should use :attr:`lru_capacity_bytes`.
        """
        self._require_built()
        total = self.codes.nbytes + self.pq.codebooks.nbytes
        total += len(self._static_cache) * self.layout.node_bytes
        total += len(self._node_cache) * self.layout.node_bytes
        return total

    @property
    def lru_capacity_bytes(self) -> int:
        """Provisioned (budgeted) size of the LRU node cache."""
        self._require_built()
        return self._lru_capacity * self.layout.node_bytes

    def cache_stats(self) -> dict[str, int]:
        """Cumulative node-cache + prefetch counters (telemetry)."""
        stats = self.prefetch_stats
        return {"static_hits": self.static_hits,
                "lru_hits": self.lru_hits,
                "misses": self.cache_misses,
                "prefetch_issued": stats.issued,
                "prefetch_useful": stats.useful,
                "prefetch_wasted": stats.wasted}

    def disk_bytes(self) -> int:
        self._require_built()
        return self.layout.total_bytes(self.graph.n)
