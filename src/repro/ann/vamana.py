"""Vamana: the graph construction behind DiskANN (paper [68]).

A single-layer proximity graph built in two passes of greedy-search +
RobustPrune with a relaxation factor ``alpha`` > 1, which keeps a few
long-range edges so searches starting at the medoid converge in few
hops — the property that makes the graph viable on storage.

RobustPrune's multiplicative slack requires *non-negative* distances,
so graphs are always built on the prepared representation from
:func:`repro.ann.distance.prepare` (cosine becomes squared-L2 on unit
vectors); raw inner product is rejected.
"""

from __future__ import annotations

import heapq
import typing as t

import numpy as np

from repro.ann.distance import make_kernel, prepare
from repro.errors import AnnIndexError

Kernel = t.Callable[[np.ndarray, t.Any], np.ndarray]


class VamanaGraph:
    """The built graph: adjacency lists, the medoid, prepared vectors."""

    def __init__(self, X: np.ndarray, internal_metric: str,
                 neighbors: list[np.ndarray], medoid: int, R: int) -> None:
        self.X = X
        self.internal_metric = internal_metric
        self.neighbors = neighbors
        self.medoid = medoid
        self.R = R
        self.kernel: Kernel = make_kernel(X, internal_metric)

    # The kernel closure cannot be pickled; rebuild it on load.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("kernel", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.kernel = make_kernel(self.X, self.internal_metric)

    @property
    def n(self) -> int:
        return self.X.shape[0]

    def degree_stats(self) -> tuple[float, int]:
        degrees = [len(nbrs) for nbrs in self.neighbors]
        return float(np.mean(degrees)), int(np.max(degrees))

    def high_degree_nodes(self, count: int) -> list[int]:
        """The *count* best-connected nodes (in+out degree, desc).

        High in-degree hubs are the traversal magnets every beam search
        crosses; the hotness cache pins them so they survive cache
        drops.  Ties break on node id for determinism.
        """
        if count <= 0:
            return []
        degree = np.zeros(self.n, dtype=np.int64)
        for node, nbrs in enumerate(self.neighbors):
            degree[node] += len(nbrs)
            degree[nbrs] += 1
        order = np.lexsort((np.arange(self.n), -degree))
        return [int(nid) for nid in order[:count]]


def greedy_search(neighbors: list[np.ndarray], kernel: Kernel, start: int,
                  query: np.ndarray,
                  L: int) -> tuple[list[tuple[float, int]],
                                   list[tuple[float, int]]]:
    """Best-first search keeping an L-sized candidate list.

    Returns ``(top_L_candidates, all_visited)`` both as (distance, id)
    lists sorted by distance.  Used by the index build; the DiskANN
    *search* path re-implements this loop with beams and I/O accounting.
    """
    start_dist = float(kernel(query, [start])[0])
    visited: dict[int, float] = {}
    frontier = [(start_dist, start)]
    best: list[tuple[float, int]] = [(-start_dist, start)]
    seen = {start}
    while frontier:
        dist, node = heapq.heappop(frontier)
        if len(best) >= L and dist > -best[0][0]:
            break
        visited[node] = dist
        fresh = [nid for nid in neighbors[node] if nid not in seen]
        if not fresh:
            continue
        seen.update(fresh)
        dists = kernel(query, fresh)
        for d, nid in zip(dists, fresh):
            d = float(d)
            if len(best) < L or d < -best[0][0]:
                heapq.heappush(frontier, (d, nid))
                heapq.heappush(best, (-d, nid))
                if len(best) > L:
                    heapq.heappop(best)
    top = sorted((-d, nid) for d, nid in best)
    return top, sorted((d, nid) for nid, d in visited.items())


def robust_prune(X: np.ndarray, kernel: Kernel, node: int,
                 candidates: list[tuple[float, int]], alpha: float,
                 R: int) -> np.ndarray:
    """DiskANN's RobustPrune: diverse out-edges with alpha slack.

    Keeps the closest candidate, then discards every candidate that is
    ``alpha`` times closer to a kept neighbour than to the node itself;
    repeats until R edges are kept.  Distances must be non-negative.
    """
    pool: dict[int, float] = {}
    for dist, nid in candidates:
        if nid != node:
            pool.setdefault(int(nid), float(dist))
    kept: list[int] = []
    order = sorted(pool.items(), key=lambda item: item[1])
    alive = {nid for nid, _d in order}
    for nid, _dist in order:
        if len(kept) >= R:
            break
        if nid not in alive:
            continue
        kept.append(nid)
        alive.discard(nid)
        if not alive:
            break
        rest = list(alive)
        to_kept = kernel(X[nid], rest)
        for other, d_between in zip(rest, to_kept):
            if alpha * float(d_between) <= pool[other]:
                alive.discard(other)
    return np.asarray(kept, dtype=np.int64)


def build_vamana(X: np.ndarray, metric: str = "l2", R: int = 32,
                 L_build: int = 64, alpha: float = 1.2,
                 seed: int = 0) -> VamanaGraph:
    """Two-pass Vamana construction (alpha=1 pass, then alpha pass)."""
    X = np.asarray(X, dtype=np.float32)
    if X.ndim != 2 or X.shape[0] == 0:
        raise AnnIndexError(f"Vamana needs non-empty 2D data: {X.shape}")
    if alpha < 1.0:
        raise AnnIndexError(f"alpha must be >= 1.0: {alpha}")
    if metric == "ip":
        raise AnnIndexError(
            "Vamana needs non-negative distances; use l2 or cosine")
    X, internal_metric = prepare(X, metric)
    kernel = make_kernel(X, internal_metric)
    n = X.shape[0]
    R = min(R, max(1, n - 1))
    rng = np.random.default_rng(seed)

    medoid = int(kernel(X.mean(axis=0), slice(None)).argmin())
    neighbors: list[np.ndarray] = []
    for node in range(n):
        choices = rng.choice(n, size=min(R, n - 1), replace=False)
        neighbors.append(choices[choices != node].astype(np.int64))

    passes = (1.0, alpha) if alpha > 1.0 else (1.0,)
    for pass_alpha in passes:
        for node in rng.permutation(n):
            node = int(node)
            _top, visited = greedy_search(neighbors, kernel, medoid,
                                          X[node], L_build)
            pool = list(visited)
            if len(neighbors[node]):
                current_dists = kernel(X[node], neighbors[node])
                pool.extend((float(d), int(nid)) for d, nid in
                            zip(current_dists, neighbors[node]))
            neighbors[node] = robust_prune(X, kernel, node, pool,
                                           pass_alpha, R)
            for nid in neighbors[node]:
                nid = int(nid)
                if node in neighbors[nid]:
                    continue
                if len(neighbors[nid]) < R:
                    neighbors[nid] = np.append(neighbors[nid], node)
                else:
                    extended = np.append(neighbors[nid], node)
                    cand_dists = kernel(X[nid], extended)
                    cand = [(float(d), int(c)) for d, c in
                            zip(cand_dists, extended)]
                    neighbors[nid] = robust_prune(X, kernel, nid, cand,
                                                  pass_alpha, R)
    return VamanaGraph(X, internal_metric, neighbors, medoid, R)
