"""repro: reproduction of "Storage-Based Approximate Nearest Neighbor
Search: What are the Performance, Cost, and I/O Characteristics?"
(IISWC 2025).

Subpackages
-----------
- ``repro.simkernel`` — deterministic discrete-event simulation kernel;
- ``repro.storage``  — calibrated NVMe/SATA device, page cache, tracer;
- ``repro.ann``      — IVF, HNSW, Vamana/DiskANN, PQ/SQ, from scratch;
- ``repro.data``     — synthetic proxies of the Cohere/OpenAI datasets;
- ``repro.engines``  — Milvus/Qdrant/Weaviate/LanceDB-profile engines;
- ``repro.workload`` — VectorDBBench-style closed-loop benchmark runner;
- ``repro.serve``    — open-loop serving: admission control, batching,
  load shedding, SLO/goodput accounting (beyond the paper);
- ``repro.trace``    — block-trace analysis (bandwidth, request sizes);
- ``repro.faults``   — fault injection + resilience (beyond the paper);
- ``repro.cluster``  — sharding, replication, scatter-gather top-k over
  simulated nodes, behind the same :class:`Deployment` facade;
- ``repro.mutate``   — streaming mutability: snapshot + delta log +
  tombstones + background compaction (beyond the paper);
- ``repro.chaos``    — composed fault schedules, a self-healing
  supervisor, invariant oracles, schedule shrinking (beyond the paper);
- ``repro.tenancy``  — multi-tenant SLO autopilot: cost-priced quotas,
  closed-loop quality control, tiered placement (beyond the paper);
- ``repro.core``     — the study: figures, observation checks, reports.

The architecture — how a query flows through these layers — is
documented in ``docs/ARCHITECTURE.md``.
"""

from repro.api import ClusterSession, Deployment, Session, open_cluster, \
    open_engine
from repro.bench import BenchConfig, run_bench
from repro.chaos import (ChaosRunResult, ChaosSchedule, Supervisor,
                         SupervisorConfig, run_chaos)
from repro.cluster import ClusterTopology
from repro.data.registry import load_dataset
from repro.ann.workprofile import SearchResult
from repro.engines.engine import IndexSpec, SearchRequest, VectorEngine
from repro.engines.payload import Filter
from repro.faults import FaultPlan, ResiliencePolicy
from repro.serve import ServeConfig, ServeResult, Tenant, TenantLoad
from repro.tenancy import TenancyConfig, TenantProfile, TenantRegistry
from repro.workload.setup import make_runner

__version__ = "1.9.0"

__all__ = [
    "BenchConfig",
    "ChaosRunResult",
    "ChaosSchedule",
    "ClusterSession",
    "ClusterTopology",
    "Deployment",
    "FaultPlan",
    "Filter",
    "IndexSpec",
    "ResiliencePolicy",
    "SearchRequest",
    "SearchResult",
    "ServeConfig",
    "ServeResult",
    "Session",
    "Supervisor",
    "SupervisorConfig",
    "TenancyConfig",
    "Tenant",
    "TenantLoad",
    "TenantProfile",
    "TenantRegistry",
    "VectorEngine",
    "__version__",
    "load_dataset",
    "make_runner",
    "open_cluster",
    "open_engine",
    "run_bench",
    "run_chaos",
]
