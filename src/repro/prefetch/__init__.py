"""I/O-aware prefetching and hotness caching for storage-based search.

The paper's I/O characterization (RQ2/RQ3) shows storage-based search
dominated by small 4 KiB reads whose volume scales with ``search_list``
and ``beam_width``.  Two published remedies motivate this subsystem:

* **look-ahead prefetching** (LAANN): while a beam's demand reads are in
  flight, speculatively issue reads for the best *unexpanded* candidates
  just beyond the beam — the most likely members of the next hop's
  frontier.  Speculation overlaps device time with CPU distance work and
  collapses dependent I/O rounds when it hits; it never changes the
  traversal, so recall is bit-identical.
* **hotness-aware caching** (GoVector): admit and evict cache entries by
  access frequency instead of recency, and pin structurally hot nodes
  (entry point, high-degree hubs) that every query crosses.

:class:`~repro.prefetch.policy.CachePolicy` implementations back the
DiskANN node cache, the SPANN posting-list cache, and the OS page-cache
model; :class:`~repro.prefetch.lookahead.LookaheadPrefetcher` drives the
beam-search speculation.  Both are selectable per run through search
parameters (``cache_policy=...``, ``prefetch_depth=...``).
"""

from repro.prefetch.lookahead import LookaheadPrefetcher, PrefetchStats
from repro.prefetch.policy import (POLICY_NAMES, CachePolicy, HotnessPolicy,
                                   LRUPolicy, make_policy)

__all__ = [
    "CachePolicy",
    "HotnessPolicy",
    "LRUPolicy",
    "LookaheadPrefetcher",
    "POLICY_NAMES",
    "PrefetchStats",
    "make_policy",
]
