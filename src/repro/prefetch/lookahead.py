"""Look-ahead prefetching for dependent-read graph traversals.

DiskANN's beam search is a chain of dependent I/O rounds: the next
beam's node reads cannot be *known* until the current beam's neighbours
have been ranked.  But they can be *guessed*: the candidate list is
sorted by PQ distance, and the nodes ranked just beyond the current beam
are overwhelmingly likely to form the next frontier.  LAANN exploits
this by issuing speculative reads for those nodes alongside the demand
beam — the device works on hop ``i+1``'s data while the CPU ranks hop
``i``'s neighbours.

The prefetcher only *pre-loads* node data; it never reorders or expands
the traversal, so returned ids and distances are bit-identical with
prefetching off (asserted by the equivalence property tests).  Its cost
is the speculative reads that guess wrong: the **wasted-read ratio**
(prefetched-but-never-expanded nodes) is a first-class telemetry metric
next to the **prefetch hit rate**.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass
class PrefetchStats:
    """Cumulative speculation counters of one index (telemetry)."""

    issued: int = 0      # speculative node reads issued
    useful: int = 0      # later consumed by a beam (prefetch hits)
    wasted: int = 0      # dropped unconsumed at the end of a search

    @property
    def hit_rate(self) -> float:
        return self.useful / self.issued if self.issued else 0.0

    @property
    def wasted_ratio(self) -> float:
        return self.wasted / self.issued if self.issued else 0.0

    def as_dict(self) -> dict[str, int]:
        return {"issued": self.issued, "useful": self.useful,
                "wasted": self.wasted}


class LookaheadPrefetcher:
    """Per-search speculation buffer of one graph traversal.

    ``depth`` bounds how many candidates beyond the demand beam are
    speculatively fetched per round.  The buffer holds node ids whose
    speculative reads have been issued but not yet consumed; the runner
    models their device time as events overlapping the demand beam and
    the CPU between rounds.
    """

    def __init__(self, depth: int, stats: PrefetchStats) -> None:
        self.depth = depth
        self.stats = stats
        self._buffer: set[int] = set()

    def __contains__(self, node: int) -> bool:
        return node in self._buffer

    def plan(self, ranked_unvisited: t.Iterable[int],
             is_resident: t.Callable[[int], bool]) -> list[int]:
        """Pick this round's speculation targets.

        *ranked_unvisited* are candidate node ids beyond the demand
        beam, best-first; nodes already resident in a cache or in the
        speculation buffer are skipped.  Returns the chosen ids (their
        reads must then be issued by the caller) in rank order.
        """
        chosen: list[int] = []
        for node in ranked_unvisited:
            if len(chosen) >= self.depth:
                break
            if node in self._buffer or is_resident(node):
                continue
            self._buffer.add(node)
            chosen.append(node)
        self.stats.issued += len(chosen)
        return chosen

    def consume(self, node: int) -> bool:
        """True (and counts a hit) if *node* sits in the buffer."""
        if node in self._buffer:
            self._buffer.discard(node)
            self.stats.useful += 1
            return True
        return False

    def finish(self) -> int:
        """Close the search: unconsumed speculation becomes waste."""
        wasted = len(self._buffer)
        self.stats.wasted += wasted
        self._buffer.clear()
        return wasted
