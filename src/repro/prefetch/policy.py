"""Cache admission/eviction policies shared by the caching layers.

A :class:`CachePolicy` tracks *which* keys are resident — node ids for
the DiskANN node cache, cell ids for the SPANN posting-list cache, page
numbers for the OS page-cache model.  Payload bytes never live here
(the simulation moves timing, not data), so one policy implementation
serves every layer.

Two policies are provided:

* :class:`LRUPolicy` — recency only; byte-compatible with the plain
  ``OrderedDict`` caches it replaces (same hits, same evictions).
* :class:`HotnessPolicy` — frequency-weighted admission and eviction
  with pinning.  Accesses bump a per-key frequency that *survives*
  evictions and cache drops (the profiled-hotness memory of GoVector):
  a dropped cache refills in hot-first order instead of thrashing.
  When full, a new key is admitted only if it is at least as hot as the
  coldest resident key, and pinned keys (graph entry point, high-degree
  hubs) are never evicted.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import typing as t

from repro.errors import ReproError

POLICY_NAMES = ("lru", "hotness")


class CachePolicy:
    """Resident-set bookkeeping with a capacity in entries."""

    name = "abstract"

    def __init__(self, capacity: int,
                 pinned: t.Iterable[int] = ()) -> None:
        if capacity < 0:
            raise ReproError(f"negative cache capacity: {capacity}")
        self.capacity = capacity
        self.pinned = frozenset(pinned)
        if capacity and len(self.pinned) > capacity:
            # Keep the hottest-by-construction prefix; callers pass the
            # pin set in priority order via sorted containers.
            self.pinned = frozenset(sorted(self.pinned)[:capacity])
        self.evictions = 0

    def __contains__(self, key: int) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def touch(self, key: int) -> None:
        """Record a hit on a resident *key*."""
        raise NotImplementedError

    def admit(self, key: int) -> None:
        """Offer *key* for residency, evicting per policy if needed."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop the resident set (``drop_caches``); pins re-seed it."""
        raise NotImplementedError


class LRUPolicy(CachePolicy):
    """Classic least-recently-used eviction (no pinning semantics)."""

    name = "lru"

    def __init__(self, capacity: int,
                 pinned: t.Iterable[int] = ()) -> None:
        super().__init__(capacity, pinned=())
        self._entries: "collections.OrderedDict[int, None]" = (
            collections.OrderedDict())

    def __contains__(self, key: int) -> bool:
        return self.capacity > 0 and key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, key: int) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)

    def admit(self, key: int) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = None
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class HotnessPolicy(CachePolicy):
    """Frequency-weighted admission/eviction with pinned keys.

    Eviction picks the resident, unpinned key with the lowest
    (frequency, arrival-order) — a lazy min-heap keeps that O(log n)
    amortized.  Admission of a new key into a full cache is refused
    when the key is strictly colder than the current victim, so
    one-touch scans cannot flush the hot set.
    """

    name = "hotness"

    def __init__(self, capacity: int,
                 pinned: t.Iterable[int] = ()) -> None:
        super().__init__(capacity, pinned)
        self._freq: collections.Counter[int] = collections.Counter()
        self._resident: set[int] = set()
        self._heap: list[tuple[int, int, int]] = []  # (freq, seq, key)
        self._seq = itertools.count()
        self.rejected = 0
        self.clear()

    def __contains__(self, key: int) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def frequency(self, key: int) -> int:
        """Lifetime access count of *key* (survives eviction/clear)."""
        return self._freq[key]

    def touch(self, key: int) -> None:
        self._freq[key] += 1
        if key in self._resident and key not in self.pinned:
            heapq.heappush(self._heap,
                           (self._freq[key], next(self._seq), key))

    def _victim(self) -> tuple[int, int] | None:
        """(frequency, key) of the coldest evictable resident, or None."""
        while self._heap:
            freq, seq, key = self._heap[0]
            if key not in self._resident or freq != self._freq[key]:
                heapq.heappop(self._heap)      # stale lazy entry
                continue
            return freq, key
        return None

    def admit(self, key: int) -> None:
        if self.capacity <= 0 or key in self._resident:
            self._freq[key] += 1
            return
        self._freq[key] += 1
        if len(self._resident) >= self.capacity:
            victim = self._victim()
            if victim is None:                 # everything pinned
                self.rejected += 1
                return
            victim_freq, victim_key = victim
            if self._freq[key] < victim_freq:
                self.rejected += 1             # colder than the coldest
                return
            self._resident.discard(victim_key)
            self.evictions += 1
        self._resident.add(key)
        if key not in self.pinned:
            heapq.heappush(self._heap,
                           (self._freq[key], next(self._seq), key))

    def clear(self) -> None:
        """Drop residency but keep frequencies — profiled hotness."""
        self._resident = set(
            sorted(self.pinned)[:self.capacity] if self.capacity else ())
        self._heap.clear()


def make_policy(name: str, capacity: int,
                pinned: t.Iterable[int] = ()) -> CachePolicy:
    """Instantiate a policy by its run-selectable name."""
    if name == "lru":
        return LRUPolicy(capacity)
    if name == "hotness":
        return HotnessPolicy(capacity, pinned)
    raise ReproError(
        f"unknown cache policy {name!r}; one of {POLICY_NAMES}")
